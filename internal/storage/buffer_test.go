package storage

import (
	"errors"
	"sync"
	"testing"
)

func TestBufferPoolFetchHitMiss(t *testing.T) {
	dev := NewMemDevice()
	bp := NewBufferPool(dev, 4)
	p, err := bp.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	id := p.ID
	p.Insert([]byte("x"))
	bp.Unpin(id, true)

	// First fetch after NewPage is a hit (still cached).
	if _, err := bp.Fetch(id); err != nil {
		t.Fatal(err)
	}
	bp.Unpin(id, false)
	st := bp.Stats()
	if st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("stats = %+v, want 1 hit", st)
	}
}

func TestBufferPoolEvictionWritesBack(t *testing.T) {
	dev := NewMemDevice()
	bp := NewBufferPool(dev, 2)
	var ids []PageID
	for i := 0; i < 3; i++ {
		p, err := bp.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Insert([]byte{byte('a' + i)}); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, p.ID)
		bp.Unpin(p.ID, true)
	}
	// Pool capacity 2, three pages created: at least one eviction happened
	// and its dirty contents must be readable back.
	st := bp.Stats()
	if st.Evictions == 0 || st.Writes == 0 {
		t.Fatalf("stats = %+v, want evictions with writes", st)
	}
	for i, id := range ids {
		p, err := bp.Fetch(id)
		if err != nil {
			t.Fatalf("Fetch(%d): %v", id, err)
		}
		rec, err := p.Read(0)
		if err != nil || rec[0] != byte('a'+i) {
			t.Fatalf("page %d contents lost across eviction: %v", id, err)
		}
		bp.Unpin(id, false)
	}
}

func TestBufferPoolAllPinned(t *testing.T) {
	dev := NewMemDevice()
	bp := NewBufferPool(dev, 2)
	p1, _ := bp.NewPage()
	p2, _ := bp.NewPage()
	if _, err := bp.NewPage(); !errors.Is(err, ErrPoolFull) {
		t.Fatalf("NewPage with all frames pinned: %v", err)
	}
	bp.Unpin(p1.ID, false)
	if _, err := bp.NewPage(); err != nil {
		t.Fatalf("NewPage after unpin: %v", err)
	}
	bp.Unpin(p2.ID, false)
}

func TestBufferPoolUnpinUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Unpin of unknown page did not panic")
		}
	}()
	bp := NewBufferPool(NewMemDevice(), 2)
	bp.Unpin(99, false)
}

func TestBufferPoolFlushAll(t *testing.T) {
	dev := NewMemDevice()
	bp := NewBufferPool(dev, 8)
	p, _ := bp.NewPage()
	id := p.ID
	p.Insert([]byte("persist me"))
	bp.Unpin(id, true)
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// Read through a second pool over the same device: data must be there.
	bp2 := NewBufferPool(dev, 8)
	p2, err := bp2.Fetch(id)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := p2.Read(0)
	if err != nil || string(rec) != "persist me" {
		t.Fatalf("after flush: %q, %v", rec, err)
	}
	bp2.Unpin(id, false)
}

func TestBufferPoolLRUOrder(t *testing.T) {
	dev := NewMemDevice()
	bp := NewBufferPool(dev, 2)
	a, _ := bp.NewPage()
	aID := a.ID
	bp.Unpin(aID, true)
	b, _ := bp.NewPage()
	bID := b.ID
	bp.Unpin(bID, true)
	// Touch a so b is the LRU victim.
	bp.Fetch(aID)
	bp.Unpin(aID, false)
	c, _ := bp.NewPage()
	bp.Unpin(c.ID, true)
	bp.ResetStats()
	// a should still be cached (hit); b should have been evicted (miss).
	bp.Fetch(aID)
	bp.Unpin(aID, false)
	st := bp.Stats()
	if st.Hits != 1 {
		t.Fatalf("a evicted out of LRU order: %+v", st)
	}
	bp.Fetch(bID)
	bp.Unpin(bID, false)
	st = bp.Stats()
	if st.Misses != 1 {
		t.Fatalf("b unexpectedly cached: %+v", st)
	}
}

func TestBufferPoolConcurrentFetch(t *testing.T) {
	dev := NewMemDevice()
	bp := NewBufferPool(dev, 4)
	var ids []PageID
	for i := 0; i < 8; i++ {
		p, _ := bp.NewPage()
		p.Insert([]byte{byte(i)})
		ids = append(ids, p.ID)
		bp.Unpin(p.ID, true)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := ids[(w+i)%len(ids)]
				p, err := bp.Fetch(id)
				if err != nil {
					t.Errorf("Fetch: %v", err)
					return
				}
				rec, err := p.Read(0)
				if err != nil {
					t.Errorf("Read: %v", err)
				} else if int(rec[0]) != int(id-ids[0]) {
					t.Errorf("page %d: wrong payload %d", id, rec[0])
				}
				bp.Unpin(id, false)
			}
		}(w)
	}
	wg.Wait()
}

func TestFileDeviceRoundTrip(t *testing.T) {
	path := t.TempDir() + "/dev.pages"
	dev, err := OpenFileDevice(path)
	if err != nil {
		t.Fatal(err)
	}
	id, err := dev.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	var p Page
	p.ID = id
	p.InitPage()
	p.Insert([]byte("on disk"))
	if err := dev.WritePage(&p); err != nil {
		t.Fatal(err)
	}
	if err := dev.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen and read back.
	dev2, err := OpenFileDevice(path)
	if err != nil {
		t.Fatal(err)
	}
	defer dev2.Close()
	if dev2.NumPages() != 1 {
		t.Fatalf("NumPages = %d", dev2.NumPages())
	}
	var q Page
	if err := dev2.ReadPage(id, &q); err != nil {
		t.Fatal(err)
	}
	rec, err := q.Read(0)
	if err != nil || string(rec) != "on disk" {
		t.Fatalf("read back: %q %v", rec, err)
	}
	// Out-of-range reads fail.
	if err := dev2.ReadPage(99, &q); !errors.Is(err, ErrBadPage) {
		t.Fatalf("bad page read: %v", err)
	}
}

func TestMemDeviceBadPage(t *testing.T) {
	dev := NewMemDevice()
	var p Page
	if err := dev.ReadPage(1, &p); !errors.Is(err, ErrBadPage) {
		t.Fatalf("read unallocated: %v", err)
	}
	p.ID = 7
	if err := dev.WritePage(&p); !errors.Is(err, ErrBadPage) {
		t.Fatalf("write unallocated: %v", err)
	}
}

func TestBufferPoolShardScaling(t *testing.T) {
	dev := NewMemDevice()
	// Small pools must stay single-sharded so the exact-LRU replacement
	// tests (and the clustering bench's miss accounting) keep their global
	// ordering; large pools split up to 16 ways with >=16 frames each.
	cases := []struct{ capacity, shards int }{
		{1, 1}, {2, 1}, {4, 1}, {31, 1}, {32, 2}, {64, 4}, {256, 16}, {10000, 16},
	}
	for _, c := range cases {
		if got := NewBufferPool(dev, c.capacity).Shards(); got != c.shards {
			t.Errorf("capacity %d: shards = %d, want %d", c.capacity, got, c.shards)
		}
	}
	// Capacity is preserved across the split: filling a 64-page pool with
	// unpinned pages never exceeds 64 cached frames.
	bp := NewBufferPool(dev, 64)
	for i := 0; i < 100; i++ {
		p, err := bp.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		bp.Unpin(p.ID, false)
	}
	if bp.Len() > 64 {
		t.Fatalf("pool over capacity: %d frames cached", bp.Len())
	}
}

func TestBufferPoolParallelStats(t *testing.T) {
	dev := NewMemDevice()
	bp := NewBufferPool(dev, 256)
	if bp.Shards() != 16 {
		t.Fatalf("expected 16 shards, got %d", bp.Shards())
	}
	var ids []PageID
	for i := 0; i < 64; i++ {
		p, err := bp.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		p.Insert([]byte{byte(i)})
		ids = append(ids, p.ID)
		bp.Unpin(p.ID, true)
	}
	bp.ResetStats()
	const workers, iters = 8, 250
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				id := ids[(w*7+i)%len(ids)]
				p, err := bp.Fetch(id)
				if err != nil {
					t.Errorf("Fetch: %v", err)
					return
				}
				if _, err := p.Read(0); err != nil {
					t.Errorf("Read: %v", err)
				}
				bp.Unpin(id, false)
				// Interleave stats snapshots with fetches: must be
				// race-clean and monotonic per counter.
				_ = bp.Stats()
			}
		}(w)
	}
	wg.Wait()
	st := bp.Stats()
	if st.Hits+st.Misses != workers*iters {
		t.Fatalf("hits+misses = %d, want %d (stats %+v)", st.Hits+st.Misses, workers*iters, st)
	}
}
