package value

import (
	"encoding/json"
	"fmt"

	"repro/internal/uid"
)

// jsonValue is the JSON wire form of a Value, used when persisting
// catalog metadata (e.g. :init defaults). Object data itself uses the
// binary encoding package, not JSON.
type jsonValue struct {
	Kind  string      `json:"k"`
	Int   *int64      `json:"i,omitempty"`
	Real  *float64    `json:"f,omitempty"`
	Str   *string     `json:"s,omitempty"`
	Bool  *bool       `json:"b,omitempty"`
	Ref   *uid.UID    `json:"r,omitempty"`
	Elems []jsonValue `json:"e,omitempty"`
}

func toJSON(v Value) jsonValue {
	out := jsonValue{Kind: v.Kind().String()}
	switch v.Kind() {
	case KindInt:
		i, _ := v.AsInt()
		out.Int = &i
	case KindReal:
		f, _ := v.AsReal()
		out.Real = &f
	case KindString:
		s, _ := v.AsString()
		out.Str = &s
	case KindBool:
		b, _ := v.AsBool()
		out.Bool = &b
	case KindRef:
		r, _ := v.AsRef()
		out.Ref = &r
	case KindSet, KindList:
		for _, e := range v.Elems() {
			out.Elems = append(out.Elems, toJSON(e))
		}
	}
	return out
}

func fromJSON(j jsonValue) (Value, error) {
	switch j.Kind {
	case "nil", "":
		return Nil, nil
	case "int":
		if j.Int == nil {
			return Nil, fmt.Errorf("value: int payload missing")
		}
		return Int(*j.Int), nil
	case "real":
		if j.Real == nil {
			return Nil, fmt.Errorf("value: real payload missing")
		}
		return Real(*j.Real), nil
	case "string":
		if j.Str == nil {
			return Nil, fmt.Errorf("value: string payload missing")
		}
		return Str(*j.Str), nil
	case "bool":
		if j.Bool == nil {
			return Nil, fmt.Errorf("value: bool payload missing")
		}
		return Bool(*j.Bool), nil
	case "ref":
		if j.Ref == nil {
			return Nil, fmt.Errorf("value: ref payload missing")
		}
		return Ref(*j.Ref), nil
	case "set", "list":
		elems := make([]Value, 0, len(j.Elems))
		for _, je := range j.Elems {
			e, err := fromJSON(je)
			if err != nil {
				return Nil, err
			}
			elems = append(elems, e)
		}
		if j.Kind == "set" {
			return SetOf(elems...), nil
		}
		return ListOf(elems...), nil
	default:
		return Nil, fmt.Errorf("value: unknown kind %q", j.Kind)
	}
}

// MarshalJSON implements json.Marshaler.
func (v Value) MarshalJSON() ([]byte, error) {
	return json.Marshal(toJSON(v))
}

// UnmarshalJSON implements json.Unmarshaler.
func (v *Value) UnmarshalJSON(b []byte) error {
	var j jsonValue
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	nv, err := fromJSON(j)
	if err != nil {
		return err
	}
	*v = nv
	return nil
}
