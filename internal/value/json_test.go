package value

import (
	"encoding/json"
	"math/rand"
	"testing"

	"repro/internal/uid"
)

func jsonRoundTrip(t *testing.T, v Value) Value {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal %v: %v", v, err)
	}
	var got Value
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatalf("unmarshal %s: %v", b, err)
	}
	return got
}

func TestJSONRoundTrip(t *testing.T) {
	cases := []Value{
		Nil,
		Int(-42),
		Real(2.5),
		Str("hello \"quoted\""),
		Bool(true),
		Bool(false),
		Ref(uid.UID{Class: 3, Serial: 7}),
		SetOf(Int(1), Str("x")),
		ListOf(SetOf(Bool(false)), Nil, Real(0)),
	}
	for _, v := range cases {
		got := jsonRoundTrip(t, v)
		if !got.Equal(v) {
			t.Errorf("round trip of %v = %v", v, got)
		}
		if got.Kind() != v.Kind() {
			t.Errorf("kind changed: %v -> %v", v.Kind(), got.Kind())
		}
	}
}

func TestJSONRoundTripRandom(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for i := 0; i < 300; i++ {
		v := genValue(r, 3)
		got := jsonRoundTrip(t, v)
		if !got.Equal(v) {
			t.Fatalf("iter %d: %v -> %v", i, v, got)
		}
	}
}

func TestJSONInsideStruct(t *testing.T) {
	// Values embedded in structs (as in the catalog's AttrSpec.Initial)
	// round-trip too.
	type wrap struct {
		Name string `json:"name"`
		Init Value  `json:"init"`
	}
	w := wrap{Name: "n", Init: SetOf(Int(1), Int(2))}
	b, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	var got wrap
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got.Name != "n" || !got.Init.Equal(w.Init) {
		t.Fatalf("got %+v", got)
	}
}

func TestJSONUnmarshalErrors(t *testing.T) {
	cases := []string{
		`{"k":"int"}`,          // missing payload
		`{"k":"real"}`,         //
		`{"k":"string"}`,       //
		`{"k":"bool"}`,         //
		`{"k":"ref"}`,          //
		`{"k":"martian"}`,      // unknown kind
		`{"k":"set","e":[{}]}`, // nested bad element: {} is kind "" = nil — actually fine
		`[1,2]`,                // wrong shape
	}
	for _, src := range cases[:6] {
		var v Value
		if err := json.Unmarshal([]byte(src), &v); err == nil {
			t.Errorf("unmarshal %q succeeded as %v", src, v)
		}
	}
	// Element with empty kind decodes as nil (tolerated).
	var v Value
	if err := json.Unmarshal([]byte(`{"k":"set","e":[{}]}`), &v); err != nil {
		t.Fatalf("empty-kind element: %v", err)
	}
	// Structurally wrong JSON errors.
	if err := json.Unmarshal([]byte(`[1,2]`), &v); err == nil {
		t.Error("array unmarshal succeeded")
	}
}
