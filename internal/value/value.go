// Package value implements the dynamic, self-describing values stored in
// object attributes. ORION objects are dynamic records: an attribute's
// value may be a primitive (integer, real, string, boolean), a reference
// to another object (a UID), or a set or list of such values (the paper's
// "set-of" domains). Because Go has no inheritance or dynamic typing, the
// kernel represents attribute values with this tagged union and interprets
// them against the schema catalog.
package value

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/uid"
)

// Kind discriminates the representation of a Value.
type Kind uint8

// The value kinds. KindNil is the zero Kind: an unset attribute.
const (
	KindNil Kind = iota
	KindInt
	KindReal
	KindString
	KindBool
	KindRef  // reference to another object by UID
	KindSet  // unordered collection (paper: "set-of" domains)
	KindList // ordered collection
)

// String returns the lowercase kind name.
func (k Kind) String() string {
	switch k {
	case KindNil:
		return "nil"
	case KindInt:
		return "int"
	case KindReal:
		return "real"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	case KindRef:
		return "ref"
	case KindSet:
		return "set"
	case KindList:
		return "list"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is an immutable-by-convention dynamic value. The zero Value is
// Nil. Values are compared with Equal, not ==, because collection kinds
// carry slices.
type Value struct {
	kind  Kind
	i     int64
	f     float64
	s     string
	b     bool
	r     uid.UID
	elems []Value
}

// Nil is the null value.
var Nil = Value{}

// Int returns an integer value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Real returns a floating-point value.
func Real(f float64) Value { return Value{kind: KindReal, f: f} }

// Str returns a string value.
func Str(s string) Value { return Value{kind: KindString, s: s} }

// Bool returns a boolean value.
func Bool(b bool) Value { return Value{kind: KindBool, b: b} }

// Ref returns a reference value. Ref(uid.Nil) is the Nil value, so a null
// reference and an unset attribute are indistinguishable, as in ORION.
func Ref(u uid.UID) Value {
	if u.IsNil() {
		return Nil
	}
	return Value{kind: KindRef, r: u}
}

// SetOf returns a set value over the given elements. Duplicate elements
// (by Equal) are dropped; the first occurrence's position is kept so that
// results render deterministically.
func SetOf(elems ...Value) Value {
	out := make([]Value, 0, len(elems))
	for _, e := range elems {
		dup := false
		for _, have := range out {
			if have.Equal(e) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, e)
		}
	}
	return Value{kind: KindSet, elems: out}
}

// ListOf returns a list value over the given elements.
func ListOf(elems ...Value) Value {
	return Value{kind: KindList, elems: append([]Value(nil), elems...)}
}

// RefSet returns a set value of references, a convenience for composite
// set-valued attributes.
func RefSet(us ...uid.UID) Value {
	elems := make([]Value, 0, len(us))
	for _, u := range us {
		if !u.IsNil() {
			elems = append(elems, Ref(u))
		}
	}
	return SetOf(elems...)
}

// Kind returns the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsNil reports whether the value is unset.
func (v Value) IsNil() bool { return v.kind == KindNil }

// AsInt returns the integer payload; ok is false for other kinds.
func (v Value) AsInt() (int64, bool) { return v.i, v.kind == KindInt }

// AsReal returns the float payload; ok is false for other kinds.
func (v Value) AsReal() (float64, bool) { return v.f, v.kind == KindReal }

// AsString returns the string payload; ok is false for other kinds.
func (v Value) AsString() (string, bool) { return v.s, v.kind == KindString }

// AsBool returns the boolean payload; ok is false for other kinds.
func (v Value) AsBool() (bool, bool) { return v.b, v.kind == KindBool }

// AsRef returns the referenced UID; ok is false for other kinds.
func (v Value) AsRef() (uid.UID, bool) { return v.r, v.kind == KindRef }

// Elems returns the elements of a set or list; nil for other kinds. The
// caller must not mutate the returned slice.
func (v Value) Elems() []Value {
	if v.kind == KindSet || v.kind == KindList {
		return v.elems
	}
	return nil
}

// IsCollection reports whether v is a set or list.
func (v Value) IsCollection() bool { return v.kind == KindSet || v.kind == KindList }

// Len returns the number of elements of a collection, and 0 otherwise.
func (v Value) Len() int {
	if v.IsCollection() {
		return len(v.elems)
	}
	return 0
}

// Equal reports deep structural equality. Sets compare order-insensitively;
// lists compare order-sensitively. NaN reals compare equal to themselves so
// Equal is an equivalence relation.
func (v Value) Equal(w Value) bool {
	if v.kind != w.kind {
		return false
	}
	switch v.kind {
	case KindNil:
		return true
	case KindInt:
		return v.i == w.i
	case KindReal:
		if math.IsNaN(v.f) && math.IsNaN(w.f) {
			return true
		}
		return v.f == w.f
	case KindString:
		return v.s == w.s
	case KindBool:
		return v.b == w.b
	case KindRef:
		return v.r == w.r
	case KindList:
		if len(v.elems) != len(w.elems) {
			return false
		}
		for i := range v.elems {
			if !v.elems[i].Equal(w.elems[i]) {
				return false
			}
		}
		return true
	case KindSet:
		if len(v.elems) != len(w.elems) {
			return false
		}
		used := make([]bool, len(w.elems))
	outer:
		for _, e := range v.elems {
			for j, f := range w.elems {
				if !used[j] && e.Equal(f) {
					used[j] = true
					continue outer
				}
			}
			return false
		}
		return true
	default:
		return false
	}
}

// Clone returns a deep copy of v; mutating helpers below always operate on
// copies, so Clone is only needed when handing internals to callers that
// may retain them.
func (v Value) Clone() Value {
	if !v.IsCollection() {
		return v
	}
	out := v
	out.elems = make([]Value, len(v.elems))
	for i, e := range v.elems {
		out.elems[i] = e.Clone()
	}
	return out
}

// Refs appends to dst every UID referenced by v, recursing through
// collections, and returns the extended slice. The order is deterministic
// (element order within the value).
func (v Value) Refs(dst []uid.UID) []uid.UID {
	switch v.kind {
	case KindRef:
		return append(dst, v.r)
	case KindSet, KindList:
		for _, e := range v.elems {
			dst = e.Refs(dst)
		}
	}
	return dst
}

// ContainsRef reports whether v references u, directly or inside a
// collection.
func (v Value) ContainsRef(u uid.UID) bool {
	switch v.kind {
	case KindRef:
		return v.r == u
	case KindSet, KindList:
		for _, e := range v.elems {
			if e.ContainsRef(u) {
				return true
			}
		}
	}
	return false
}

// WithoutRef returns a copy of v with every reference to u removed. A
// direct reference becomes Nil; collection elements referencing u are
// dropped.
func (v Value) WithoutRef(u uid.UID) Value {
	switch v.kind {
	case KindRef:
		if v.r == u {
			return Nil
		}
		return v
	case KindSet, KindList:
		out := make([]Value, 0, len(v.elems))
		for _, e := range v.elems {
			ne := e.WithoutRef(u)
			if ne.IsNil() && e.kind == KindRef {
				continue // drop removed refs from collections
			}
			out = append(out, ne)
		}
		nv := v
		nv.elems = out
		return nv
	default:
		return v
	}
}

// ReplaceRef returns a copy of v with every reference to old rewritten to
// point at new. If new is Nil the behavior matches WithoutRef. This is
// used when version derivation rebinds an exclusive reference to a generic
// instance (paper Figure 1).
func (v Value) ReplaceRef(old, new uid.UID) Value {
	if new.IsNil() {
		return v.WithoutRef(old)
	}
	switch v.kind {
	case KindRef:
		if v.r == old {
			return Ref(new)
		}
		return v
	case KindSet, KindList:
		out := make([]Value, len(v.elems))
		for i, e := range v.elems {
			out[i] = e.ReplaceRef(old, new)
		}
		nv := v
		nv.elems = out
		return nv
	default:
		return v
	}
}

// WithRef returns a copy of the collection v with a reference to u added
// (sets ignore duplicates). If v is Nil a direct reference is returned; if
// v is a direct reference the result is a set of both, which the schema
// layer rejects for single-valued attributes.
func (v Value) WithRef(u uid.UID) Value {
	switch v.kind {
	case KindNil:
		return Ref(u)
	case KindRef:
		return SetOf(v, Ref(u))
	case KindSet:
		for _, e := range v.elems {
			if e.ContainsRef(u) {
				return v
			}
		}
		nv := v
		nv.elems = append(append([]Value(nil), v.elems...), Ref(u))
		return nv
	case KindList:
		nv := v
		nv.elems = append(append([]Value(nil), v.elems...), Ref(u))
		return nv
	default:
		return v
	}
}

// String renders the value in an s-expression-friendly form.
func (v Value) String() string {
	switch v.kind {
	case KindNil:
		return "nil"
	case KindInt:
		return fmt.Sprintf("%d", v.i)
	case KindReal:
		return fmt.Sprintf("%g", v.f)
	case KindString:
		return fmt.Sprintf("%q", v.s)
	case KindBool:
		if v.b {
			return "true"
		}
		return "false"
	case KindRef:
		return "#" + v.r.String()
	case KindSet, KindList:
		parts := make([]string, len(v.elems))
		for i, e := range v.elems {
			parts[i] = e.String()
		}
		open := "{"
		close := "}"
		if v.kind == KindList {
			open, close = "[", "]"
		}
		return open + strings.Join(parts, " ") + close
	default:
		return "?"
	}
}

// SortedRefs returns the UIDs referenced by v in UID order, deduplicated.
func (v Value) SortedRefs() []uid.UID {
	refs := v.Refs(nil)
	sort.Slice(refs, func(i, j int) bool { return refs[i].Less(refs[j]) })
	out := refs[:0]
	var prev uid.UID
	for i, r := range refs {
		if i == 0 || r != prev {
			out = append(out, r)
		}
		prev = r
	}
	return out
}
