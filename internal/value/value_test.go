package value

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/uid"
)

func u(c uint32, s uint64) uid.UID { return uid.UID{Class: uid.ClassID(c), Serial: s} }

func TestConstructorsAndAccessors(t *testing.T) {
	if v, ok := Int(42).AsInt(); !ok || v != 42 {
		t.Fatalf("Int accessor: %v %v", v, ok)
	}
	if v, ok := Real(2.5).AsReal(); !ok || v != 2.5 {
		t.Fatalf("Real accessor: %v %v", v, ok)
	}
	if v, ok := Str("hi").AsString(); !ok || v != "hi" {
		t.Fatalf("Str accessor: %v %v", v, ok)
	}
	if v, ok := Bool(true).AsBool(); !ok || !v {
		t.Fatalf("Bool accessor: %v %v", v, ok)
	}
	r := u(1, 2)
	if v, ok := Ref(r).AsRef(); !ok || v != r {
		t.Fatalf("Ref accessor: %v %v", v, ok)
	}
	// Wrong-kind accessors fail.
	if _, ok := Int(1).AsString(); ok {
		t.Fatal("AsString on int succeeded")
	}
	if _, ok := Str("x").AsRef(); ok {
		t.Fatal("AsRef on string succeeded")
	}
}

func TestRefNilCollapsesToNil(t *testing.T) {
	v := Ref(uid.Nil)
	if !v.IsNil() {
		t.Fatal("Ref(Nil) is not the nil value")
	}
	if v.Kind() != KindNil {
		t.Fatalf("Ref(Nil).Kind() = %v", v.Kind())
	}
}

func TestSetDeduplicates(t *testing.T) {
	s := SetOf(Int(1), Int(2), Int(1), Int(3), Int(2))
	if s.Len() != 3 {
		t.Fatalf("set Len = %d, want 3", s.Len())
	}
	want := []Value{Int(1), Int(2), Int(3)}
	got := s.Elems()
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Fatalf("elem %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestEqualSetOrderInsensitive(t *testing.T) {
	a := SetOf(Int(1), Int(2), Int(3))
	b := SetOf(Int(3), Int(1), Int(2))
	if !a.Equal(b) {
		t.Fatal("sets with same elements in different order not Equal")
	}
	c := ListOf(Int(1), Int(2))
	d := ListOf(Int(2), Int(1))
	if c.Equal(d) {
		t.Fatal("lists with different order compare Equal")
	}
	if a.Equal(c) {
		t.Fatal("set equals list")
	}
}

func TestEqualNaN(t *testing.T) {
	n := Real(math.NaN())
	if !n.Equal(n) {
		t.Fatal("NaN value not Equal to itself; Equal is not reflexive")
	}
}

func TestRefsRecursion(t *testing.T) {
	v := SetOf(
		Ref(u(1, 1)),
		ListOf(Ref(u(1, 2)), Int(9), SetOf(Ref(u(2, 1)))),
		Str("x"),
	)
	refs := v.Refs(nil)
	want := []uid.UID{u(1, 1), u(1, 2), u(2, 1)}
	if !reflect.DeepEqual(refs, want) {
		t.Fatalf("Refs = %v, want %v", refs, want)
	}
	for _, r := range want {
		if !v.ContainsRef(r) {
			t.Fatalf("ContainsRef(%v) = false", r)
		}
	}
	if v.ContainsRef(u(9, 9)) {
		t.Fatal("ContainsRef of absent ref = true")
	}
}

func TestWithoutRef(t *testing.T) {
	a, b, c := u(1, 1), u(1, 2), u(1, 3)
	direct := Ref(a)
	if !direct.WithoutRef(a).IsNil() {
		t.Fatal("WithoutRef on direct ref did not nil it")
	}
	set := RefSet(a, b, c)
	got := set.WithoutRef(b)
	if got.Len() != 2 || got.ContainsRef(b) {
		t.Fatalf("WithoutRef on set = %v", got)
	}
	if !got.ContainsRef(a) || !got.ContainsRef(c) {
		t.Fatal("WithoutRef removed the wrong elements")
	}
	// Original is untouched (immutability by convention).
	if set.Len() != 3 {
		t.Fatal("WithoutRef mutated its receiver")
	}
}

func TestReplaceRef(t *testing.T) {
	a, b, g := u(1, 1), u(1, 2), u(7, 1)
	v := SetOf(Ref(a), Ref(b))
	got := v.ReplaceRef(a, g)
	if !got.ContainsRef(g) || got.ContainsRef(a) || !got.ContainsRef(b) {
		t.Fatalf("ReplaceRef = %v", got)
	}
	// Replacing with Nil behaves like WithoutRef (paper Fig. 1: dependent
	// refs are set to Nil on derivation).
	got = v.ReplaceRef(a, uid.Nil)
	if got.ContainsRef(a) || got.Len() != 1 {
		t.Fatalf("ReplaceRef to Nil = %v", got)
	}
}

func TestWithRef(t *testing.T) {
	a, b := u(1, 1), u(1, 2)
	v := Nil.WithRef(a)
	if r, ok := v.AsRef(); !ok || r != a {
		t.Fatalf("Nil.WithRef = %v", v)
	}
	s := RefSet(a)
	s2 := s.WithRef(b)
	if s2.Len() != 2 || !s2.ContainsRef(b) {
		t.Fatalf("set WithRef = %v", s2)
	}
	// Duplicate add is a no-op for sets.
	s3 := s2.WithRef(b)
	if s3.Len() != 2 {
		t.Fatalf("duplicate WithRef grew the set: %v", s3)
	}
}

func TestCloneIsDeep(t *testing.T) {
	inner := ListOf(Int(1), Int(2))
	v := SetOf(inner, Str("x"))
	c := v.Clone()
	if !c.Equal(v) {
		t.Fatal("clone not equal to original")
	}
	// Mutate the clone's internals via the exposed slice; original must be
	// unaffected.
	c.Elems()[0].elems[0] = Int(99)
	if v.Elems()[0].Elems()[0].Equal(Int(99)) {
		t.Fatal("mutating clone affected original: clone is shallow")
	}
}

func TestStringRendering(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Nil, "nil"},
		{Int(-3), "-3"},
		{Real(1.5), "1.5"},
		{Str("a b"), `"a b"`},
		{Bool(true), "true"},
		{Bool(false), "false"},
		{Ref(u(2, 9)), "#2:9"},
		{SetOf(Int(1), Int(2)), "{1 2}"},
		{ListOf(Str("x")), `["x"]`},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%v-kind) = %q, want %q", c.v.Kind(), got, c.want)
		}
	}
}

func TestSortedRefsDedup(t *testing.T) {
	a, b := u(2, 1), u(1, 5)
	v := ListOf(Ref(a), Ref(b), Ref(a))
	got := v.SortedRefs()
	want := []uid.UID{b, a}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SortedRefs = %v, want %v", got, want)
	}
}

// genValue builds a random value of bounded depth for property tests.
func genValue(r *rand.Rand, depth int) Value {
	k := r.Intn(8)
	if depth <= 0 && k >= 6 {
		k = r.Intn(6)
	}
	switch k {
	case 0:
		return Nil
	case 1:
		return Int(r.Int63n(100))
	case 2:
		return Real(float64(r.Intn(100)) / 4)
	case 3:
		return Str(string(rune('a' + r.Intn(26))))
	case 4:
		return Bool(r.Intn(2) == 0)
	case 5:
		return Ref(u(uint32(r.Intn(4)+1), uint64(r.Intn(10)+1)))
	default:
		n := r.Intn(4)
		elems := make([]Value, n)
		for i := range elems {
			elems[i] = genValue(r, depth-1)
		}
		if k == 6 {
			return SetOf(elems...)
		}
		return ListOf(elems...)
	}
}

func TestPropertyEqualReflexiveAndCloneEqual(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		v := genValue(r, 3)
		if !v.Equal(v) {
			t.Fatalf("Equal not reflexive for %v", v)
		}
		if !v.Clone().Equal(v) {
			t.Fatalf("Clone not Equal for %v", v)
		}
	}
}

func TestPropertyWithoutRefRemovesAll(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		v := genValue(r, 3)
		refs := v.Refs(nil)
		if len(refs) == 0 {
			continue
		}
		target := refs[r.Intn(len(refs))]
		got := v.WithoutRef(target)
		if got.ContainsRef(target) {
			t.Fatalf("WithoutRef(%v) left a reference in %v -> %v", target, v, got)
		}
	}
}

func TestPropertySetDedupIdempotent(t *testing.T) {
	f := func(xs []int64) bool {
		vals := make([]Value, len(xs))
		for i, x := range xs {
			vals[i] = Int(x)
		}
		once := SetOf(vals...)
		twice := SetOf(once.Elems()...)
		return once.Equal(twice) && once.Len() == twice.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		KindNil: "nil", KindInt: "int", KindReal: "real", KindString: "string",
		KindBool: "bool", KindRef: "ref", KindSet: "set", KindList: "list",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
	if Kind(99).String() != "kind(99)" {
		t.Errorf("unknown kind = %q", Kind(99).String())
	}
}

func TestWithRefOnListAndScalar(t *testing.T) {
	a, b := u(1, 1), u(1, 2)
	l := ListOf(Ref(a))
	l2 := l.WithRef(b)
	if l2.Len() != 2 || !l2.ContainsRef(b) {
		t.Fatalf("list WithRef = %v", l2)
	}
	// Direct ref becomes a two-element set.
	v := Ref(a).WithRef(b)
	if v.Kind() != KindSet || v.Len() != 2 {
		t.Fatalf("ref WithRef = %v", v)
	}
	// Non-collection scalars are returned unchanged.
	s := Int(5).WithRef(a)
	if !s.Equal(Int(5)) {
		t.Fatalf("scalar WithRef = %v", s)
	}
}

func TestElemsAndLenOnScalars(t *testing.T) {
	if Int(1).Elems() != nil || Int(1).Len() != 0 {
		t.Fatal("scalar Elems/Len wrong")
	}
}
