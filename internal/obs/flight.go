// Black-box flight recorder: an always-on, lock-free ring of compact
// per-operation records, kept cheap enough to run in production (one
// atomic add plus one pointer store per record) and dumped only when
// something goes wrong — a deadlock-victim abort, a slow-op threshold
// breach, a checkpoint failure on the crash path — or on demand via the
// shell's (flight dump) and the /flight HTTP endpoint.
//
// The ring is a slice of atomic record pointers with a monotonically
// increasing cursor: writers claim a sequence number with one atomic
// add and store their record at seq mod len, so concurrent writers
// never block each other and a reader sees each slot either empty, or
// holding a complete record (possibly from an older lap). Records()
// sorts by sequence number to restore order and drops at most the few
// slots a concurrent lap is overwriting.
package obs

import (
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// FlightRecord is one completed operation in the ring.
type FlightRecord struct {
	Seq     uint64        `json:"seq"`
	At      time.Time     `json:"at"`
	Op      string        `json:"op"`      // e.g. "components-of", "txn.commit"
	Root    string        `json:"root"`    // root UID / lock key / detail
	Dur     time.Duration `json:"dur_ns"`
	Outcome string        `json:"outcome"` // "ok", "err", "deadlock", ...
	Costs   string        `json:"costs,omitempty"`
}

func (r FlightRecord) String() string {
	s := fmt.Sprintf("#%d %s %s %s %s", r.Seq, r.At.Format("15:04:05.000"), r.Op, r.Root, r.Dur.Round(time.Microsecond))
	if r.Outcome != "" && r.Outcome != "ok" {
		s += " !" + r.Outcome
	}
	if r.Costs != "" {
		s += " [" + r.Costs + "]"
	}
	return s
}

// FlightRecorder is the lock-free ring. The zero value is unusable; use
// NewFlightRecorder. Every method accepts a nil receiver.
type FlightRecorder struct {
	slots []atomic.Pointer[FlightRecord]
	cur   atomic.Uint64 // next sequence number to claim

	records *Counter // flight_records_total, bound by the owning registry
	dumps   *Counter // flight_dumps_total

	wmu      sync.Mutex
	w        io.Writer    // dump destination; default os.Stderr
	lastDump atomic.Int64 // unix ns of the last throttled dump
}

// NewFlightRecorder returns a recorder with a ring of the given
// capacity (minimum 64) dumping to stderr.
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity < 64 {
		capacity = 64
	}
	return &FlightRecorder{slots: make([]atomic.Pointer[FlightRecord], capacity), w: os.Stderr}
}

// SetWriter redirects dumps (tests capture them here). Safe on nil.
func (f *FlightRecorder) SetWriter(w io.Writer) {
	if f == nil {
		return
	}
	f.wmu.Lock()
	f.w = w
	f.wmu.Unlock()
}

// Record appends one operation record to the ring.
func (f *FlightRecorder) Record(op, root string, dur time.Duration, outcome, costs string) {
	if f == nil {
		return
	}
	seq := f.cur.Add(1) - 1
	rec := &FlightRecord{Seq: seq, At: time.Now(), Op: op, Root: root, Dur: dur, Outcome: outcome, Costs: costs}
	f.slots[seq%uint64(len(f.slots))].Store(rec)
	f.records.Inc()
}

// Len returns the number of records currently retained.
func (f *FlightRecorder) Len() int {
	return len(f.Records())
}

// Records returns the retained records in sequence order, oldest first.
func (f *FlightRecorder) Records() []FlightRecord {
	if f == nil {
		return nil
	}
	out := make([]FlightRecord, 0, len(f.slots))
	for i := range f.slots {
		if r := f.slots[i].Load(); r != nil {
			out = append(out, *r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Clear empties the ring (sequence numbers keep increasing).
func (f *FlightRecorder) Clear() {
	if f == nil {
		return
	}
	for i := range f.slots {
		f.slots[i].Store(nil)
	}
}

// Dump writes every retained record to the configured writer, newest
// last, headed by the reason. It returns the number of records written.
func (f *FlightRecorder) Dump(reason string) int {
	if f == nil {
		return 0
	}
	recs := f.Records()
	f.wmu.Lock()
	w := f.w
	if w == nil {
		w = os.Stderr
	}
	fmt.Fprintf(w, "flight dump (%s): %d records\n", reason, len(recs))
	for _, r := range recs {
		fmt.Fprintf(w, "  %s\n", r)
	}
	f.wmu.Unlock()
	f.dumps.Inc()
	return len(recs)
}

// DumpThrottled dumps at most once per second — for triggers that can
// fire in bursts (slow-op breaches under a storm). Returns the record
// count, or -1 when suppressed.
func (f *FlightRecorder) DumpThrottled(reason string) int {
	if f == nil {
		return 0
	}
	now := time.Now().UnixNano()
	last := f.lastDump.Load()
	if now-last < int64(time.Second) || !f.lastDump.CompareAndSwap(last, now) {
		return -1
	}
	return f.Dump(reason)
}
