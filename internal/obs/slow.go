package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// SlowEntry is one recorded slow operation.
type SlowEntry struct {
	Op     string        `json:"op"`
	Dur    time.Duration `json:"dur_ns"`
	At     time.Time     `json:"at"`
	Detail string        `json:"detail,omitempty"`
}

// SlowLog records operations whose duration meets a configurable
// threshold into a fixed ring. A zero threshold (the default) disables
// it; emission sites guard with Active() — a nil check plus one atomic
// load — so the disabled path never calls time.Now.
type SlowLog struct {
	thresh atomic.Int64 // nanoseconds; 0 = disabled

	// onBreach, when set (NewRegistry wires it to a throttled flight
	// dump), fires after each entry is recorded — outside the ring mutex.
	onBreach func()

	mu    sync.Mutex
	buf   []SlowEntry
	start int
	n     int
}

// NewSlowLog returns a disabled slow log with a ring of the given
// capacity (minimum 16).
func NewSlowLog(capacity int) *SlowLog {
	if capacity < 16 {
		capacity = 16
	}
	return &SlowLog{buf: make([]SlowEntry, capacity)}
}

// Active reports whether the log records anything. Safe on nil.
func (s *SlowLog) Active() bool {
	return s != nil && s.thresh.Load() > 0
}

// SetThreshold sets the minimum duration to record; 0 disables.
func (s *SlowLog) SetThreshold(d time.Duration) {
	if s != nil {
		s.thresh.Store(int64(d))
	}
}

// Threshold returns the current threshold.
func (s *SlowLog) Threshold() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.thresh.Load())
}

// Observe records op if d meets the threshold.
func (s *SlowLog) Observe(op string, d time.Duration, detail string) {
	if s == nil {
		return
	}
	t := s.thresh.Load()
	if t <= 0 || int64(d) < t {
		return
	}
	s.mu.Lock()
	i := (s.start + s.n) % len(s.buf)
	s.buf[i] = SlowEntry{Op: op, Dur: d, At: time.Now(), Detail: detail}
	if s.n < len(s.buf) {
		s.n++
	} else {
		s.start = (s.start + 1) % len(s.buf)
	}
	s.mu.Unlock()
	if s.onBreach != nil {
		s.onBreach()
	}
}

// Entries returns the recorded entries, oldest first.
func (s *SlowLog) Entries() []SlowEntry {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SlowEntry, 0, s.n)
	for i := 0; i < s.n; i++ {
		out = append(out, s.buf[(s.start+i)%len(s.buf)])
	}
	return out
}

// Clear empties the ring.
func (s *SlowLog) Clear() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.start, s.n = 0, 0
}
