package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): `# TYPE` header per family, cumulative
// `_bucket{le="..."}` series plus `_sum`/`_count` for histograms.
// Families are emitted in sorted name order so scrapes diff cleanly.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	counters, gauges, hists := r.names()
	for _, n := range counters {
		fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", n, n, r.Counter(n).Load())
	}
	for _, n := range gauges {
		fmt.Fprintf(bw, "# TYPE %s gauge\n%s %d\n", n, n, r.Gauge(n).Load())
	}
	for _, n := range hists {
		h := r.Histogram(n, nil)
		fmt.Fprintf(bw, "# TYPE %s histogram\n", n)
		var cum uint64
		for i, bound := range h.bounds {
			cum += h.buckets[i].Load()
			fmt.Fprintf(bw, "%s_bucket{le=\"%d\"} %d\n", n, bound, cum)
		}
		cum += h.buckets[len(h.bounds)].Load()
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", n, cum)
		fmt.Fprintf(bw, "%s_sum %d\n", n, h.sum.Load())
		fmt.Fprintf(bw, "%s_count %d\n", n, h.count.Load())
		// Interpolated quantile estimates as a summary-style gauge family
		// (suffix _quantile so the histogram series names stay untouched).
		if h.count.Load() > 0 {
			fmt.Fprintf(bw, "# TYPE %s_quantile gauge\n", n)
			for _, q := range [...]struct {
				label string
				q     float64
			}{{"0.5", 0.50}, {"0.95", 0.95}, {"0.99", 0.99}} {
				fmt.Fprintf(bw, "%s_quantile{quantile=\"%s\"} %d\n", n, q.label, h.Quantile(q.q))
			}
		}
	}
	return bw.Flush()
}

// Sample is one parsed exposition line: a metric name, optional label
// pairs, and a value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ParseExposition parses Prometheus text exposition format, returning
// every sample. It validates metric-name syntax, label syntax, and that
// each value parses as a float; any malformed line is an error. The CI
// scrape check and the handler tests run the emitted text back through
// this parser.
func ParseExposition(r io.Reader) ([]Sample, error) {
	var out []Sample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			// Comment: only HELP and TYPE are defined; others tolerated.
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("obs: exposition line %d: %w", lineNo, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseSample(line string) (Sample, error) {
	var s Sample
	rest := line
	// Metric name runs up to '{' or whitespace.
	end := strings.IndexAny(rest, "{ \t")
	if end < 0 {
		return s, fmt.Errorf("no value: %q", line)
	}
	s.Name = rest[:end]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("bad metric name %q", s.Name)
	}
	rest = rest[end:]
	if rest[0] == '{' {
		close := strings.IndexByte(rest, '}')
		if close < 0 {
			return s, fmt.Errorf("unterminated label set: %q", line)
		}
		labels, err := parseLabels(rest[1:close])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[close+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // value [timestamp]
		return s, fmt.Errorf("want value and optional timestamp, got %q", rest)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	s.Value = v
	return s, nil
}

func parseLabels(body string) (map[string]string, error) {
	out := map[string]string{}
	body = strings.TrimSuffix(strings.TrimSpace(body), ",")
	if body == "" {
		return out, nil
	}
	for _, pair := range splitLabelPairs(body) {
		eq := strings.IndexByte(pair, '=')
		if eq < 0 {
			return nil, fmt.Errorf("bad label pair %q", pair)
		}
		k := strings.TrimSpace(pair[:eq])
		v := strings.TrimSpace(pair[eq+1:])
		if !validLabelName(k) {
			return nil, fmt.Errorf("bad label name %q", k)
		}
		if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
			return nil, fmt.Errorf("label value not quoted: %q", v)
		}
		out[k] = v[1 : len(v)-1]
	}
	return out, nil
}

// splitLabelPairs splits on commas outside quoted values.
func splitLabelPairs(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
