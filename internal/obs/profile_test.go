package obs

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestProfCtxCounts(t *testing.T) {
	p := NewProfCtx("test")
	p.PoolHit()
	p.PoolHit()
	p.PoolMiss()
	p.PageRead()
	p.PageWrite()
	p.WALAppend(26)
	p.WALAppend(10)
	p.ObjectVisited()
	p.CacheHit()
	p.CacheMiss()
	p.VersionsWalked(3)
	p.LockWait("X", 5*time.Millisecond)
	p.LockWait("X", 3*time.Millisecond)
	p.LockWait("IS", time.Millisecond)
	p.Finish()

	c := p.Counts()
	want := ProfCounts{
		PoolHits: 2, PoolMisses: 1, PagesRead: 1, PagesWritten: 1,
		WALAppends: 2, WALBytes: 36,
		LockWaits: 3, LockWaitNs: int64(9 * time.Millisecond),
		ObjectsVisited: 1, CacheHits: 1, CacheMisses: 1, VersionsWalked: 3,
	}
	if c != want {
		t.Fatalf("Counts = %+v, want %+v", c, want)
	}
	waits := p.LockWaits()
	if waits["X"].Count != 2 || waits["X"].Ns != int64(8*time.Millisecond) {
		t.Fatalf("X waits = %+v", waits["X"])
	}
	if waits["IS"].Count != 1 {
		t.Fatalf("IS waits = %+v", waits["IS"])
	}
	if p.Wall() <= 0 {
		t.Fatal("Finish left zero wall time")
	}
	top := p.TopCosts()
	for _, frag := range []string{"visited=1", "pool_hit=2", "wal_bytes=36", "versions=3", "lock_wait=3/"} {
		if !strings.Contains(top, frag) {
			t.Fatalf("TopCosts %q lacks %q", top, frag)
		}
	}
	rep := p.Report()
	for _, frag := range []string{"profile test", "traversal: 1 objects visited", "pool: 2 hits", "wal: 2 appends", "mvcc: 3 versions walked", "locks: 3 waits"} {
		if !strings.Contains(rep, frag) {
			t.Fatalf("Report %q lacks %q", rep, frag)
		}
	}
}

func TestProfCtxNil(t *testing.T) {
	var p *ProfCtx
	p.PoolHit()
	p.PoolMiss()
	p.PageRead()
	p.PageWrite()
	p.WALAppend(1)
	p.LockWait("X", time.Second)
	p.ObjectVisited()
	p.CacheHit()
	p.CacheMiss()
	p.VersionsWalked(1)
	p.Finish()
	p.Span("x")()
	if p.Wall() != 0 || p.Counts() != (ProfCounts{}) || p.LockWaits() != nil || p.Spans() != nil {
		t.Fatal("nil ProfCtx recorded state")
	}
	if p.TopCosts() != "" {
		t.Fatal("nil TopCosts non-empty")
	}
}

func TestProfCtxSpans(t *testing.T) {
	p := NewProfCtx("spans")
	end := p.Span("outer")
	inner := p.Span("inner")
	inner()
	end()
	spans := p.Spans()
	if len(spans) != 2 || spans[0].Name != "outer" || spans[0].Depth != 0 || spans[1].Name != "inner" || spans[1].Depth != 1 {
		t.Fatalf("spans = %+v", spans)
	}
}

func TestProfCtxConcurrent(t *testing.T) {
	p := NewProfCtx("conc")
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				p.ObjectVisited()
				p.PoolHit()
				p.VersionsWalked(1)
				p.LockWait("S", time.Microsecond)
			}
		}()
	}
	wg.Wait()
	c := p.Counts()
	if c.ObjectsVisited != workers*per || c.PoolHits != workers*per || c.VersionsWalked != workers*per || c.LockWaits != workers*per {
		t.Fatalf("lost updates: %+v", c)
	}
	if p.LockWaits()["S"].Count != workers*per {
		t.Fatalf("lost lock waits: %+v", p.LockWaits())
	}
}

func TestFlightRecorderBasics(t *testing.T) {
	f := NewFlightRecorder(64)
	if f.Len() != 0 {
		t.Fatal("fresh recorder non-empty")
	}
	f.Record("op-a", "1:1", time.Millisecond, "ok", "visited=3")
	f.Record("op-b", "1:2", 2*time.Millisecond, "err", "")
	recs := f.Records()
	if len(recs) != 2 || recs[0].Op != "op-a" || recs[1].Op != "op-b" {
		t.Fatalf("records = %+v", recs)
	}
	if recs[0].Seq != 0 || recs[1].Seq != 1 {
		t.Fatalf("sequence numbers = %d, %d", recs[0].Seq, recs[1].Seq)
	}
	s := recs[1].String()
	if !strings.Contains(s, "op-b") || !strings.Contains(s, "!err") {
		t.Fatalf("String = %q", s)
	}
	if !strings.Contains(recs[0].String(), "[visited=3]") {
		t.Fatalf("String = %q", recs[0].String())
	}
	f.Clear()
	if f.Len() != 0 {
		t.Fatal("Clear left records")
	}
	// Sequence numbers keep increasing past a Clear.
	f.Record("op-c", "", 0, "ok", "")
	if got := f.Records(); len(got) != 1 || got[0].Seq != 2 {
		t.Fatalf("post-clear records = %+v", got)
	}
}

func TestFlightRecorderWraparound(t *testing.T) {
	f := NewFlightRecorder(64) // minimum capacity
	const total = 150
	for i := 0; i < total; i++ {
		f.Record("op", fmt.Sprintf("root-%d", i), 0, "ok", "")
	}
	recs := f.Records()
	if len(recs) != 64 {
		t.Fatalf("retained %d records, want 64", len(recs))
	}
	// Oldest retained record is total-64; order is strictly increasing.
	if recs[0].Seq != total-64 {
		t.Fatalf("oldest seq = %d, want %d", recs[0].Seq, total-64)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Seq != recs[i-1].Seq+1 {
			t.Fatalf("gap at %d: %d -> %d", i, recs[i-1].Seq, recs[i].Seq)
		}
	}
	if recs[len(recs)-1].Root != fmt.Sprintf("root-%d", total-1) {
		t.Fatalf("newest record = %+v", recs[len(recs)-1])
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(128)
	var wg sync.WaitGroup
	const writers, per = 8, 500
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				f.Record("op", fmt.Sprintf("w%d-%d", w, i), 0, "ok", "")
			}
		}(w)
	}
	// Concurrent readers must see consistent (complete) records.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			for _, r := range f.Records() {
				if r.Op == "" {
					t.Error("reader saw a torn record")
					return
				}
			}
		}
	}()
	wg.Wait()
	<-done
	if f.cur.Load() != writers*per {
		t.Fatalf("cursor = %d, want %d", f.cur.Load(), writers*per)
	}
	recs := f.Records()
	if len(recs) != 128 {
		t.Fatalf("retained %d, want 128", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Seq <= recs[i-1].Seq {
			t.Fatalf("records out of order at %d", i)
		}
	}
}

func TestFlightDumpAndThrottle(t *testing.T) {
	r := NewRegistry()
	f := r.Flight()
	var buf bytes.Buffer
	f.SetWriter(&buf)
	f.Record("deadlock-op", "tx=1", 0, "deadlock", "lock_wait=1/1ms")
	if n := f.Dump("test reason"); n != 1 {
		t.Fatalf("Dump wrote %d records, want 1", n)
	}
	out := buf.String()
	if !strings.Contains(out, "flight dump (test reason): 1 records") || !strings.Contains(out, "deadlock-op") {
		t.Fatalf("dump output = %q", out)
	}
	if r.Counter("flight_dumps_total").Load() != 1 || r.Counter("flight_records_total").Load() != 1 {
		t.Fatal("dump/record counters not incremented")
	}
	// Throttle: first throttled dump goes through, the immediate second
	// is suppressed.
	if n := f.DumpThrottled("burst"); n < 0 {
		t.Fatal("first throttled dump suppressed")
	}
	if n := f.DumpThrottled("burst"); n != -1 {
		t.Fatalf("second throttled dump = %d, want -1", n)
	}
}

func TestFlightNil(t *testing.T) {
	var f *FlightRecorder
	f.Record("x", "", 0, "", "")
	f.SetWriter(&bytes.Buffer{})
	f.Clear()
	if f.Len() != 0 || f.Records() != nil || f.Dump("x") != 0 || f.DumpThrottled("x") != 0 {
		t.Fatal("nil recorder recorded state")
	}
	var r *Registry
	if r.Flight() != nil {
		t.Fatal("nil registry returned a recorder")
	}
}

func TestSlowLogBreachTriggersFlightDump(t *testing.T) {
	r := NewRegistry()
	var buf bytes.Buffer
	r.Flight().SetWriter(&buf)
	r.Flight().Record("slow-thing", "1:1", 50*time.Millisecond, "ok", "")
	r.Slow().SetThreshold(time.Millisecond)
	r.Slow().Observe("slow-thing", 50*time.Millisecond, "")
	if !strings.Contains(buf.String(), "slow-op threshold breach") {
		t.Fatalf("no flight dump after breach; out = %q", buf.String())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewRegistry().Histogram("q_ns", []int64{10, 20, 40, 80})
	// 100 observations uniform in (0, 10]: p50 ~ 5, all within bucket 0.
	for i := 1; i <= 100; i++ {
		h.Observe(int64(i % 10))
	}
	if p50 := h.Quantile(0.50); p50 <= 0 || p50 > 10 {
		t.Fatalf("p50 = %d, want within (0, 10]", p50)
	}
	// Push mass into the top buckets; p99 must climb.
	for i := 0; i < 400; i++ {
		h.Observe(75)
	}
	if p99 := h.Quantile(0.99); p99 <= 40 || p99 > 80 {
		t.Fatalf("p99 = %d, want within (40, 80]", p99)
	}
	// Overflow bucket clamps to the top bound.
	for i := 0; i < 10000; i++ {
		h.Observe(1000)
	}
	if p99 := h.Quantile(0.99); p99 != 80 {
		t.Fatalf("overflow p99 = %d, want clamp to 80", p99)
	}
	// Degenerate inputs.
	empty := NewRegistry().Histogram("e_ns", []int64{10})
	if empty.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile non-zero")
	}
	var nilH *Histogram
	if nilH.Quantile(0.5) != 0 {
		t.Fatal("nil histogram quantile non-zero")
	}
}

func TestQuantilesInSnapshotAndExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ns", nil)
	for i := 0; i < 1000; i++ {
		h.Observe(int64(i) * 1000)
	}
	snap := r.Snapshot()
	hs := snap.Histograms["lat_ns"]
	if hs.P50 <= 0 || hs.P95 < hs.P50 || hs.P99 < hs.P95 {
		t.Fatalf("snapshot quantiles not ordered: p50=%d p95=%d p99=%d", hs.P50, hs.P95, hs.P99)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, q := range []string{`lat_ns_quantile{quantile="0.5"}`, `lat_ns_quantile{quantile="0.95"}`, `lat_ns_quantile{quantile="0.99"}`} {
		if !strings.Contains(out, q) {
			t.Fatalf("exposition lacks %q:\n%s", q, out)
		}
	}
	// The exposition with quantile lines must still parse.
	if _, err := ParseExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
}

func TestTracerConcurrentWriters(t *testing.T) {
	tr := NewTracer(128)
	tr.SetActive(true)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				sp := tr.Begin(0, "op")
				tr.Point(sp, "mid")
				tr.End(sp, "op")
			}
		}()
	}
	// Concurrent reads while the ring wraps.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			tr.Events()
		}
	}()
	wg.Wait()
	<-done
	evs := tr.Events()
	if len(evs) == 0 || len(evs) > 128 {
		t.Fatalf("events after wrap = %d", len(evs))
	}
}
