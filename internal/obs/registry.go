// Package obs is the system's observability substrate: a dependency-free
// registry of atomic counters, gauges, and fixed-bucket histograms with
// Prometheus-style text exposition and a JSON snapshot, plus lightweight
// operation tracing (trace.go) and a slow-operation log (slow.go).
//
// Every subsystem (core engine, buffer pool, WAL, lock manager,
// transaction manager) binds its instruments from one shared Registry;
// db.Open wires a single registry through all of them so one scrape sees
// the whole system. Components constructed standalone bind a private
// registry, so instruments are always non-nil and call sites never
// branch on "is observability configured".
//
// Cost model: counters and gauges are single atomic adds; histograms are
// a bounds scan plus three atomic adds. Tracing and the slow log are off
// by default and guarded by one atomic load (nil-receiver-safe), so the
// disabled path costs a branch — BenchmarkObsDisabled in the root
// package pins the hot-path overhead under 5%.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The nil receiver is
// accepted on every method so optional instrumentation can call through
// without a guard.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load returns the current value.
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Reset zeroes the counter. The store is atomic, so concurrent readers
// see either the old or the new value, never a torn one.
func (c *Counter) Reset() {
	if c != nil {
		c.v.Store(0)
	}
}

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds delta (negative to subtract).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Reset zeroes the gauge.
func (g *Gauge) Reset() {
	if g != nil {
		g.v.Store(0)
	}
}

// DurationBuckets are the default histogram bounds for nanosecond
// latencies: 1µs to 10s, one decade per bucket.
var DurationBuckets = []int64{1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000, 1_000_000_000, 10_000_000_000}

// Histogram is a fixed-bucket histogram over int64 observations
// (nanoseconds for latencies). Buckets are cumulative on exposition,
// Prometheus-style. Each Observe is one bounds scan plus three atomic
// adds; fields are individually exact but the set is not a single
// instant's cut (same contract as the rest of the registry).
type Histogram struct {
	bounds  []int64 // upper bounds, ascending; +Inf implied
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64
}

// Observe records v.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile estimates the q-th quantile (0 < q < 1) of the observed
// distribution by linear interpolation inside the bucket that crosses
// the cumulative rank. Values in the overflow (+Inf) bucket clamp to
// the top bound. Returns 0 when the histogram is empty or nil.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.buckets {
		n := float64(h.buckets[i].Load())
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			if i >= len(h.bounds) {
				// Overflow bucket: no upper bound to interpolate toward.
				return h.bounds[len(h.bounds)-1]
			}
			lo := int64(0)
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - cum) / n
			return lo + int64(frac*float64(hi-lo))
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// Reset zeroes every bucket, the count, and the sum (each store atomic).
func (h *Histogram) Reset() {
	if h == nil {
		return
	}
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
}

// HistogramSnapshot is the JSON form of one histogram. P50/P95/P99 are
// interpolated quantile estimates (see Histogram.Quantile), zero when
// the histogram is empty.
type HistogramSnapshot struct {
	Bounds []int64  `json:"bounds"`
	Counts []uint64 `json:"counts"` // per-bucket (not cumulative); last is +Inf
	Sum    int64    `json:"sum"`
	Count  uint64   `json:"count"`
	P50    int64    `json:"p50"`
	P95    int64    `json:"p95"`
	P99    int64    `json:"p99"`
}

// Snapshot is a point-in-time JSON-friendly view of a registry.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Registry holds named instruments plus the tracer and slow log. Lookups
// are mutex-guarded get-or-create; callers are expected to resolve their
// instruments once at construction and hold the pointers, so lookup cost
// never lands on a hot path.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	tracer *Tracer
	slow   *SlowLog
	flight *FlightRecorder
}

// NewRegistry returns an empty registry with a disabled tracer (4096
// event ring), a disabled slow log (256 entry ring), and an always-on
// flight recorder (256 record ring) whose record/dump counters are
// pre-bound so the flight_* family is visible on the first scrape. A
// slow-op threshold breach triggers a throttled flight dump.
func NewRegistry() *Registry {
	r := &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		tracer:   NewTracer(4096),
		slow:     NewSlowLog(256),
		flight:   NewFlightRecorder(256),
	}
	r.flight.records = r.Counter("flight_records_total")
	r.flight.dumps = r.Counter("flight_dumps_total")
	r.slow.onBreach = func() { r.flight.DumpThrottled("slow-op threshold breach") }
	return r
}

// Tracer returns the registry's tracer (nil for a nil registry, which
// every Tracer method accepts).
func (r *Registry) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.tracer
}

// Slow returns the registry's slow-operation log (nil for a nil
// registry, which every SlowLog method accepts).
func (r *Registry) Slow() *SlowLog {
	if r == nil {
		return nil
	}
	return r.slow
}

// Flight returns the registry's flight recorder (nil for a nil
// registry, which every FlightRecorder method accepts).
func (r *Registry) Flight() *FlightRecorder {
	if r == nil {
		return nil
	}
	return r.flight
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram. bounds is
// used only on first creation; nil selects DurationBuckets.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	if bounds == nil {
		bounds = DurationBuckets
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{
			bounds:  append([]int64(nil), bounds...),
			buckets: make([]atomic.Uint64, len(bounds)+1),
		}
		r.hists[name] = h
	}
	return h
}

// Reset zeroes every registered instrument. Each field is reset with an
// atomic store, so Reset is race-free against concurrent writers and
// readers (go test -race covers this); it does not attempt a consistent
// global cut — counters incremented mid-reset keep their increment.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.counters {
		c.Reset()
	}
	for _, g := range r.gauges {
		g.Reset()
	}
	for _, h := range r.hists {
		h.Reset()
	}
}

// ResetPrefix zeroes every instrument whose name starts with prefix.
func (r *Registry) ResetPrefix(prefix string) {
	if r == nil {
		return
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for n, c := range r.counters {
		if hasPrefix(n, prefix) {
			c.Reset()
		}
	}
	for n, g := range r.gauges {
		if hasPrefix(n, prefix) {
			g.Reset()
		}
	}
	for n, h := range r.hists {
		if hasPrefix(n, prefix) {
			h.Reset()
		}
	}
}

func hasPrefix(s, p string) bool {
	return len(s) >= len(p) && s[:len(p)] == p
}

// Snapshot returns a point-in-time copy of every instrument, for the
// JSON endpoint and the bench harness.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{Counters: map[string]uint64{}}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for n, c := range r.counters {
		s.Counters[n] = c.Load()
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for n, g := range r.gauges {
			s.Gauges[n] = g.Load()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for n, h := range r.hists {
			hs := HistogramSnapshot{
				Bounds: append([]int64(nil), h.bounds...),
				Counts: make([]uint64, len(h.buckets)),
				Sum:    h.sum.Load(),
				Count:  h.count.Load(),
				P50:    h.Quantile(0.50),
				P95:    h.Quantile(0.95),
				P99:    h.Quantile(0.99),
			}
			for i := range h.buckets {
				hs.Counts[i] = h.buckets[i].Load()
			}
			s.Histograms[n] = hs
		}
	}
	return s
}

// names returns the sorted instrument names of each kind, for
// deterministic exposition.
func (r *Registry) names() (counters, gauges, hists []string) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for n := range r.counters {
		counters = append(counters, n)
	}
	for n := range r.gauges {
		gauges = append(gauges, n)
	}
	for n := range r.hists {
		hists = append(hists, n)
	}
	sort.Strings(counters)
	sort.Strings(gauges)
	sort.Strings(hists)
	return
}
