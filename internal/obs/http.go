package obs

import (
	"encoding/json"
	"net/http"
)

// Handler returns an http.Handler exposing the registry:
//
//	/metrics       Prometheus text exposition
//	/metrics.json  JSON snapshot of every instrument
//	/trace         trace ring buffer as JSON (?clear=1 empties it after)
//	/slow          slow-operation log as JSON
//	/flight        flight-recorder ring as JSON (?clear=1 empties it after)
//
// It is what cmd/orion-shell serves under -metrics; anything holding a
// *Registry can mount it.
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, r.Snapshot())
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
		tr := r.Tracer()
		writeJSON(w, tr.Events())
		if req.URL.Query().Get("clear") == "1" {
			tr.Clear()
		}
	})
	mux.HandleFunc("/slow", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, r.Slow().Entries())
	})
	mux.HandleFunc("/flight", func(w http.ResponseWriter, req *http.Request) {
		f := r.Flight()
		writeJSON(w, f.Records())
		if req.URL.Query().Get("clear") == "1" {
			f.Clear()
		}
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
