package obs

import (
	"sort"
	"sync"
)

// UnitKey identifies a composite unit for per-unit cost attribution: the
// class/serial pair of the unit's root object. obs stays dependency-free,
// so the key mirrors uid.UID structurally rather than importing it.
type UnitKey struct {
	Class  uint32
	Serial uint64
}

// UnitHeat accumulates per-composite-unit access heat — buffer-pool
// misses and write activity attributed to the unit root — for the
// usage-driven placement policy and the background reclusterer (DSTC/OPCF
// spirit: placement follows observed access patterns, not static
// structure). Heat decays between reclustering passes so a unit that
// cooled off stops attracting migrations.
//
// All methods are nil-safe: a nil *UnitHeat ignores touches and reports
// nothing, so disabled-policy paths carry no branches at call sites.
type UnitHeat struct {
	mu sync.Mutex
	m  map[UnitKey]uint64

	// Optional instruments, bound by the owner (nil-safe like all of obs).
	touches *Counter // total Touch calls
	units   *Gauge   // distinct units currently tracked
}

// NewUnitHeat returns an empty tracker. touches and units are optional
// instruments (nil disables them).
func NewUnitHeat(touches *Counter, units *Gauge) *UnitHeat {
	return &UnitHeat{m: make(map[UnitKey]uint64), touches: touches, units: units}
}

// Touch records one access attributed to the unit rooted at k.
func (h *UnitHeat) Touch(k UnitKey) {
	if h == nil {
		return
	}
	h.mu.Lock()
	if _, ok := h.m[k]; !ok {
		h.units.Add(1)
	}
	h.m[k]++
	h.mu.Unlock()
	h.touches.Inc()
}

// Load returns the current heat of unit k.
func (h *UnitHeat) Load(k UnitKey) uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.m[k]
}

// Len returns the number of units currently tracked.
func (h *UnitHeat) Len() int {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.m)
}

// Hot returns up to limit unit keys with heat >= min, hottest first (ties
// broken by key for determinism). limit <= 0 means no limit.
func (h *UnitHeat) Hot(min uint64, limit int) []UnitKey {
	if h == nil || min == 0 {
		return nil
	}
	h.mu.Lock()
	type kv struct {
		k UnitKey
		v uint64
	}
	hot := make([]kv, 0, len(h.m))
	for k, v := range h.m {
		if v >= min {
			hot = append(hot, kv{k, v})
		}
	}
	h.mu.Unlock()
	sort.Slice(hot, func(i, j int) bool {
		if hot[i].v != hot[j].v {
			return hot[i].v > hot[j].v
		}
		if hot[i].k.Class != hot[j].k.Class {
			return hot[i].k.Class < hot[j].k.Class
		}
		return hot[i].k.Serial < hot[j].k.Serial
	})
	if limit > 0 && len(hot) > limit {
		hot = hot[:limit]
	}
	out := make([]UnitKey, len(hot))
	for i, e := range hot {
		out[i] = e.k
	}
	return out
}

// Forget drops unit k (after a migration consumed its heat).
func (h *UnitHeat) Forget(k UnitKey) {
	if h == nil {
		return
	}
	h.mu.Lock()
	if _, ok := h.m[k]; ok {
		delete(h.m, k)
		h.units.Add(-1)
	}
	h.mu.Unlock()
}

// Decay halves every unit's heat, dropping units that reach zero. Called
// once per reclustering pass so stale heat ages out.
func (h *UnitHeat) Decay() {
	if h == nil {
		return
	}
	h.mu.Lock()
	for k, v := range h.m {
		v /= 2
		if v == 0 {
			delete(h.m, k)
			h.units.Add(-1)
		} else {
			h.m[k] = v
		}
	}
	h.mu.Unlock()
}
