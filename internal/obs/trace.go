package obs

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Field is one key/value annotation on a trace event.
type Field struct {
	Key string `json:"k"`
	Val string `json:"v"`
}

// F builds a Field, stringifying the value with %v.
func F(key string, val any) Field {
	s, ok := val.(string)
	if !ok {
		s = fmt.Sprintf("%v", val)
	}
	return Field{Key: key, Val: s}
}

// Event phases.
const (
	PhaseBegin = "B" // span start; Span is the new span's id
	PhaseEnd   = "E" // span end; Span names the span being closed
	PhasePoint = "I" // instant event attached to Span as parent
)

// Event is one trace record. Spans nest through Parent: a Begin event
// opens span Span under Parent; Points attach to their parent span via
// Span; End closes it. Seq is a per-tracer monotonic sequence number, so
// a dumped ring reads in emission order even after wrap-around.
type Event struct {
	Seq    uint64    `json:"seq"`
	Span   uint64    `json:"span"`
	Parent uint64    `json:"parent,omitempty"`
	Phase  string    `json:"ph"`
	Name   string    `json:"name"`
	Time   time.Time `json:"ts"`
	Fields []Field   `json:"fields,omitempty"`
}

// String renders the event compactly for writers and shells.
func (e Event) String() string {
	s := fmt.Sprintf("%d %s %s span=%d", e.Seq, e.Phase, e.Name, e.Span)
	if e.Parent != 0 {
		s += fmt.Sprintf(" parent=%d", e.Parent)
	}
	for _, f := range e.Fields {
		s += " " + f.Key + "=" + f.Val
	}
	return s
}

// Tracer records span-like operation events into a fixed ring buffer,
// optionally mirroring each event to a pluggable writer. It is disabled
// by default; every emission site guards with Active(), which is a nil
// check plus one atomic load, so the disabled path allocates nothing.
type Tracer struct {
	on atomic.Bool

	mu    sync.Mutex
	buf   []Event // ring of capacity cap(buf)
	start int     // index of oldest event
	n     int     // live events
	seq   uint64
	w     io.Writer
}

// NewTracer returns a disabled tracer with a ring of the given capacity
// (minimum 16).
func NewTracer(capacity int) *Tracer {
	if capacity < 16 {
		capacity = 16
	}
	return &Tracer{buf: make([]Event, capacity)}
}

// Active reports whether the tracer records events. Safe on nil.
func (t *Tracer) Active() bool {
	return t != nil && t.on.Load()
}

// SetActive enables or disables recording.
func (t *Tracer) SetActive(on bool) {
	if t != nil {
		t.on.Store(on)
	}
}

// SetWriter installs a writer that receives one rendered line per event
// (nil to disable). The writer is invoked under the tracer's mutex; keep
// it fast or buffered.
func (t *Tracer) SetWriter(w io.Writer) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.w = w
}

// push appends the event to the ring, assigning Seq, and mirrors it to
// the writer.
func (t *Tracer) push(e Event) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	e.Seq = t.seq
	if e.Span == 0 {
		e.Span = e.Seq
	}
	i := (t.start + t.n) % len(t.buf)
	t.buf[i] = e
	if t.n < len(t.buf) {
		t.n++
	} else {
		t.start = (t.start + 1) % len(t.buf)
	}
	if t.w != nil {
		fmt.Fprintln(t.w, e.String())
	}
	return e.Seq
}

// Begin opens a span named name under parent (0 = root), returning the
// new span id, or 0 when the tracer is inactive.
func (t *Tracer) Begin(parent uint64, name string, fields ...Field) uint64 {
	if !t.Active() {
		return 0
	}
	return t.push(Event{Parent: parent, Phase: PhaseBegin, Name: name, Time: time.Now(), Fields: fields})
}

// End closes the span opened by Begin. A zero span (Begin while
// inactive, or tracing toggled mid-operation) is ignored.
func (t *Tracer) End(span uint64, name string, fields ...Field) {
	if span == 0 || !t.Active() {
		return
	}
	t.push(Event{Span: span, Phase: PhaseEnd, Name: name, Time: time.Now(), Fields: fields})
}

// Point records an instant event under parent (0 = root).
func (t *Tracer) Point(parent uint64, name string, fields ...Field) {
	if !t.Active() {
		return
	}
	t.push(Event{Parent: parent, Phase: PhasePoint, Name: name, Time: time.Now(), Fields: fields})
}

// Events returns the ring contents in emission order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, t.n)
	for i := 0; i < t.n; i++ {
		out = append(out, t.buf[(t.start+i)%len(t.buf)])
	}
	return out
}

// Clear empties the ring (the sequence counter keeps running).
func (t *Tracer) Clear() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.start, t.n = 0, 0
}
