// Per-operation cost attribution: a ProfCtx travels with one query or
// transaction and accumulates the costs the global registry can only
// report in aggregate — buffer-pool hits vs. pages read, lock waits by
// mode, MVCC versions walked, traversal-cache hits, WAL bytes — plus a
// span tree for a pretty-printed cost breakdown.
//
// Attachment is per call path: engine traversals carry a ProfCtx in
// core.QueryOpts, snapshots pin one with SetProf, the lock manager keys
// registered contexts by transaction ID (exact under concurrency), and
// the buffer pool / WAL take an ambient context via an atomic pointer —
// ambient attribution is exact whenever one profiled operation runs at a
// time (the shell's (profile ...) and the sim consistency checks), and
// approximate under concurrent unprofiled load.
//
// Every counter is atomic and every method accepts a nil receiver, so
// instrumentation sites cost one branch when no profile is attached —
// the same contract as the rest of the package.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ProfCtx accumulates the costs of one profiled operation.
type ProfCtx struct {
	Label string
	start time.Time
	wall  atomic.Int64 // set by Finish

	// Buffer pool.
	poolHits     atomic.Uint64
	poolMisses   atomic.Uint64
	pagesRead    atomic.Uint64
	pagesWritten atomic.Uint64

	// WAL.
	walAppends atomic.Uint64
	walBytes   atomic.Uint64

	// Lock admission, by mode name (IS, IX, S, X, ...). Waits are rare
	// and already slow, so a mutex-guarded map is fine here.
	lockMu     sync.Mutex
	lockWaits  map[string]*LockWaitCost
	lockWaitNs atomic.Int64
	lockWaitN  atomic.Uint64

	// Engine traversal.
	objectsVisited atomic.Uint64
	cacheHits      atomic.Uint64
	cacheMisses    atomic.Uint64

	// MVCC snapshot reads.
	versionsWalked atomic.Uint64

	// Span tree (serial: one profiled operation is evaluated at a time;
	// parallel traversal workers only touch the atomic counters above).
	spanMu sync.Mutex
	spans  []ProfSpan
	depth  int
}

// LockWaitCost is the accumulated wait behind one lock mode.
type LockWaitCost struct {
	Count uint64
	Ns    int64
}

// ProfSpan is one timed phase of the profiled operation, at a nesting
// depth for tree rendering.
type ProfSpan struct {
	Name  string
	Depth int
	Dur   time.Duration
}

// NewProfCtx returns a live profile context; the wall clock starts now.
func NewProfCtx(label string) *ProfCtx {
	return &ProfCtx{Label: label, start: time.Now(), lockWaits: map[string]*LockWaitCost{}}
}

// Finish stamps the wall time. Safe to call more than once; the last
// call wins.
func (p *ProfCtx) Finish() {
	if p != nil {
		p.wall.Store(int64(time.Since(p.start)))
	}
}

// Wall returns the wall time stamped by Finish (or the running elapsed
// time if Finish has not been called).
func (p *ProfCtx) Wall() time.Duration {
	if p == nil {
		return 0
	}
	if w := p.wall.Load(); w != 0 {
		return time.Duration(w)
	}
	return time.Since(p.start)
}

// PoolHit records one buffer-pool hit.
func (p *ProfCtx) PoolHit() {
	if p != nil {
		p.poolHits.Add(1)
	}
}

// PoolMiss records one buffer-pool miss.
func (p *ProfCtx) PoolMiss() {
	if p != nil {
		p.poolMisses.Add(1)
	}
}

// PageRead records one page read from the store device.
func (p *ProfCtx) PageRead() {
	if p != nil {
		p.pagesRead.Add(1)
	}
}

// PageWrite records one page written back (eviction or flush).
func (p *ProfCtx) PageWrite() {
	if p != nil {
		p.pagesWritten.Add(1)
	}
}

// WALAppend records one WAL append of n payload-frame bytes.
func (p *ProfCtx) WALAppend(n int) {
	if p != nil {
		p.walAppends.Add(1)
		p.walBytes.Add(uint64(n))
	}
}

// LockWait records one wait of d behind a lock held in mode.
func (p *ProfCtx) LockWait(mode string, d time.Duration) {
	if p == nil {
		return
	}
	p.lockWaitN.Add(1)
	p.lockWaitNs.Add(int64(d))
	p.lockMu.Lock()
	lw := p.lockWaits[mode]
	if lw == nil {
		lw = &LockWaitCost{}
		p.lockWaits[mode] = lw
	}
	lw.Count++
	lw.Ns += int64(d)
	p.lockMu.Unlock()
}

// ObjectVisited records one object materialized by a traversal.
func (p *ProfCtx) ObjectVisited() {
	if p != nil {
		p.objectsVisited.Add(1)
	}
}

// CacheHit records one traversal-cache hit (ancestor or plan cache).
func (p *ProfCtx) CacheHit() {
	if p != nil {
		p.cacheHits.Add(1)
	}
}

// CacheMiss records one traversal-cache miss.
func (p *ProfCtx) CacheMiss() {
	if p != nil {
		p.cacheMisses.Add(1)
	}
}

// VersionsWalked records n MVCC chain nodes examined by a snapshot read.
func (p *ProfCtx) VersionsWalked(n int) {
	if p != nil && n > 0 {
		p.versionsWalked.Add(uint64(n))
	}
}

// Span times one phase: call it at phase start and invoke the returned
// func at phase end. Nested calls indent in the report.
func (p *ProfCtx) Span(name string) func() {
	if p == nil {
		return func() {}
	}
	p.spanMu.Lock()
	d := p.depth
	p.depth++
	i := len(p.spans)
	p.spans = append(p.spans, ProfSpan{Name: name, Depth: d})
	p.spanMu.Unlock()
	t0 := time.Now()
	return func() {
		el := time.Since(t0)
		p.spanMu.Lock()
		p.spans[i].Dur = el
		p.depth--
		p.spanMu.Unlock()
	}
}

// ProfCounts is the flat numeric view of a context, for tests and JSON.
type ProfCounts struct {
	PoolHits       uint64 `json:"pool_hits"`
	PoolMisses     uint64 `json:"pool_misses"`
	PagesRead      uint64 `json:"pages_read"`
	PagesWritten   uint64 `json:"pages_written"`
	WALAppends     uint64 `json:"wal_appends"`
	WALBytes       uint64 `json:"wal_bytes"`
	LockWaits      uint64 `json:"lock_waits"`
	LockWaitNs     int64  `json:"lock_wait_ns"`
	ObjectsVisited uint64 `json:"objects_visited"`
	CacheHits      uint64 `json:"cache_hits"`
	CacheMisses    uint64 `json:"cache_misses"`
	VersionsWalked uint64 `json:"versions_walked"`
}

// Counts returns the current counter values.
func (p *ProfCtx) Counts() ProfCounts {
	if p == nil {
		return ProfCounts{}
	}
	return ProfCounts{
		PoolHits:       p.poolHits.Load(),
		PoolMisses:     p.poolMisses.Load(),
		PagesRead:      p.pagesRead.Load(),
		PagesWritten:   p.pagesWritten.Load(),
		WALAppends:     p.walAppends.Load(),
		WALBytes:       p.walBytes.Load(),
		LockWaits:      p.lockWaitN.Load(),
		LockWaitNs:     p.lockWaitNs.Load(),
		ObjectsVisited: p.objectsVisited.Load(),
		CacheHits:      p.cacheHits.Load(),
		CacheMisses:    p.cacheMisses.Load(),
		VersionsWalked: p.versionsWalked.Load(),
	}
}

// LockWaits returns the per-mode wait costs, copied.
func (p *ProfCtx) LockWaits() map[string]LockWaitCost {
	if p == nil {
		return nil
	}
	p.lockMu.Lock()
	defer p.lockMu.Unlock()
	out := make(map[string]LockWaitCost, len(p.lockWaits))
	for m, lw := range p.lockWaits {
		out[m] = *lw
	}
	return out
}

// Spans returns the recorded span tree in start order.
func (p *ProfCtx) Spans() []ProfSpan {
	if p == nil {
		return nil
	}
	p.spanMu.Lock()
	defer p.spanMu.Unlock()
	return append([]ProfSpan(nil), p.spans...)
}

// TopCosts returns a compact "k=v k=v" summary of the non-zero
// counters, for flight records and log lines.
func (p *ProfCtx) TopCosts() string {
	if p == nil {
		return ""
	}
	c := p.Counts()
	var parts []string
	add := func(k string, v uint64) {
		if v != 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", k, v))
		}
	}
	add("visited", c.ObjectsVisited)
	add("cache_hit", c.CacheHits)
	add("cache_miss", c.CacheMisses)
	add("pool_hit", c.PoolHits)
	add("pool_miss", c.PoolMisses)
	add("pages_read", c.PagesRead)
	add("wal_bytes", c.WALBytes)
	add("versions", c.VersionsWalked)
	if c.LockWaits != 0 {
		parts = append(parts, fmt.Sprintf("lock_wait=%d/%s", c.LockWaits, time.Duration(c.LockWaitNs)))
	}
	return strings.Join(parts, " ")
}

// Report renders the cost tree: wall time, the span tree, then one line
// per non-zero cost class, stable across runs (modes sorted).
func (p *ProfCtx) Report() string {
	if p == nil {
		return "(no profile)"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "profile %s: wall %s\n", p.Label, p.Wall().Round(time.Microsecond))
	for _, s := range p.Spans() {
		fmt.Fprintf(&b, "  %s%s %s\n", strings.Repeat("  ", s.Depth), s.Name, s.Dur.Round(time.Microsecond))
	}
	c := p.Counts()
	line := func(format string, args ...any) { fmt.Fprintf(&b, "  "+format+"\n", args...) }
	if c.ObjectsVisited != 0 || c.CacheHits != 0 || c.CacheMisses != 0 {
		line("traversal: %d objects visited, cache %d hit / %d miss", c.ObjectsVisited, c.CacheHits, c.CacheMisses)
	}
	if c.PoolHits != 0 || c.PoolMisses != 0 || c.PagesRead != 0 || c.PagesWritten != 0 {
		line("pool: %d hits, %d misses (%d pages read, %d written)", c.PoolHits, c.PoolMisses, c.PagesRead, c.PagesWritten)
	}
	if c.WALAppends != 0 {
		line("wal: %d appends, %d bytes", c.WALAppends, c.WALBytes)
	}
	if c.VersionsWalked != 0 {
		line("mvcc: %d versions walked", c.VersionsWalked)
	}
	if c.LockWaits != 0 {
		waits := p.LockWaits()
		modes := make([]string, 0, len(waits))
		for m := range waits {
			modes = append(modes, m)
		}
		sort.Strings(modes)
		var ws []string
		for _, m := range modes {
			lw := waits[m]
			ws = append(ws, fmt.Sprintf("%s×%d %s", m, lw.Count, time.Duration(lw.Ns).Round(time.Microsecond)))
		}
		line("locks: %d waits, %s total (%s)", c.LockWaits, time.Duration(c.LockWaitNs).Round(time.Microsecond), strings.Join(ws, ", "))
	}
	if c == (ProfCounts{}) {
		line("no attributable costs recorded")
	}
	return strings.TrimRight(b.String(), "\n")
}
