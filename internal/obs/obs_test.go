package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	c.Inc()
	c.Add(4)
	if c.Load() != 5 {
		t.Fatalf("counter = %d, want 5", c.Load())
	}
	if r.Counter("c_total") != c {
		t.Fatal("get-or-create returned a new counter")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-3)
	if g.Load() != 4 {
		t.Fatalf("gauge = %d, want 4", g.Load())
	}
	h := r.Histogram("h_ns", []int64{10, 100})
	for _, v := range []int64{5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 3 || h.Sum() != 555 {
		t.Fatalf("histogram count=%d sum=%d", h.Count(), h.Sum())
	}
	snap := r.Snapshot()
	if snap.Counters["c_total"] != 5 || snap.Gauges["g"] != 4 {
		t.Fatalf("snapshot = %+v", snap)
	}
	hs := snap.Histograms["h_ns"]
	if len(hs.Counts) != 3 || hs.Counts[0] != 1 || hs.Counts[1] != 1 || hs.Counts[2] != 1 {
		t.Fatalf("histogram snapshot = %+v", hs)
	}
	r.Reset()
	if c.Load() != 0 || g.Load() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("Reset left non-zero instruments")
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	// Every method must be a no-op on the nil registry and the nil
	// instruments it hands out; this IS the disabled fast path.
	c := r.Counter("x")
	c.Inc()
	c.Add(2)
	c.Reset()
	if c.Load() != 0 {
		t.Fatal("nil counter loaded non-zero")
	}
	g := r.Gauge("x")
	g.Set(1)
	g.Add(1)
	if g.Load() != 0 {
		t.Fatal("nil gauge loaded non-zero")
	}
	h := r.Histogram("x", nil)
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram recorded")
	}
	tr := r.Tracer()
	if tr.Active() {
		t.Fatal("nil tracer active")
	}
	tr.SetActive(true)
	if sp := tr.Begin(0, "x"); sp != 0 {
		t.Fatalf("nil tracer Begin = %d", sp)
	}
	tr.End(1, "x")
	tr.Point(0, "x")
	if tr.Events() != nil {
		t.Fatal("nil tracer has events")
	}
	sl := r.Slow()
	sl.SetThreshold(time.Nanosecond)
	sl.Observe("x", time.Second, "")
	if sl.Active() || sl.Entries() != nil {
		t.Fatal("nil slow log recorded")
	}
	r.Reset()
	r.ResetPrefix("x")
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if s := r.Snapshot(); len(s.Counters) != 0 {
		t.Fatalf("nil registry snapshot = %+v", s)
	}
}

func TestExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("core_attach_total").Add(3)
	r.Gauge("pool_pages").Set(42)
	h := r.Histogram("core_delete_ns", nil)
	h.Observe(500)      // first bucket (<= 1000)
	h.Observe(5_000)    // second
	h.Observe(2e18 / 1) // beyond the last bound -> +Inf bucket
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, buf.String())
	}
	byKey := map[string]Sample{}
	for _, s := range samples {
		byKey[s.Name+"|"+s.Labels["le"]] = s
	}
	if byKey["core_attach_total|"].Value != 3 {
		t.Fatalf("counter sample missing: %v", samples)
	}
	if byKey["pool_pages|"].Value != 42 {
		t.Fatalf("gauge sample missing: %v", samples)
	}
	// Buckets are cumulative and end at +Inf == count.
	if byKey["core_delete_ns_bucket|1000"].Value != 1 {
		t.Fatalf("first bucket: %v", byKey["core_delete_ns_bucket|1000"])
	}
	if byKey["core_delete_ns_bucket|10000"].Value != 2 {
		t.Fatalf("second bucket: %v", byKey["core_delete_ns_bucket|10000"])
	}
	inf := byKey["core_delete_ns_bucket|+Inf"].Value
	if inf != 3 || byKey["core_delete_ns_count|"].Value != inf {
		t.Fatalf("+Inf bucket %v != count %v", inf, byKey["core_delete_ns_count|"].Value)
	}
}

func TestParseExpositionRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"1bad_name 3",
		"name_only",
		"metric{le=\"1\" 3",
		"metric{le=unquoted} 3",
		"metric{9bad=\"v\"} 3",
		"metric notanumber",
		"metric 1 2 3",
	} {
		if _, err := ParseExposition(strings.NewReader(bad)); err == nil {
			t.Errorf("%q parsed without error", bad)
		}
	}
	ok := "# HELP x y\n# TYPE x counter\nx 1\nx{a=\"b\",c=\"d,e\"} 2.5 1700000000\n"
	samples, err := ParseExposition(strings.NewReader(ok))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 2 || samples[1].Labels["c"] != "d,e" {
		t.Fatalf("samples = %+v", samples)
	}
}

func TestTracerNestingAndWrap(t *testing.T) {
	tr := NewTracer(16)
	if tr.Active() {
		t.Fatal("tracer active before SetActive")
	}
	if sp := tr.Begin(0, "off"); sp != 0 {
		t.Fatal("Begin returned a span while inactive")
	}
	tr.SetActive(true)
	root := tr.Begin(0, "outer")
	child := tr.Begin(root, "inner")
	tr.Point(child, "tick")
	tr.End(child, "inner")
	tr.End(root, "outer")
	evs := tr.Events()
	if len(evs) != 5 {
		t.Fatalf("got %d events", len(evs))
	}
	if evs[1].Parent != root || evs[1].Span != child {
		t.Fatalf("inner Begin not nested under outer: %+v", evs[1])
	}
	if evs[2].Parent != child || evs[2].Phase != PhasePoint {
		t.Fatalf("point not attached to inner: %+v", evs[2])
	}
	if evs[3].Span != child || evs[3].Phase != PhaseEnd {
		t.Fatalf("inner End: %+v", evs[3])
	}
	// Ring wrap: emit past capacity, then verify order and monotonic seq.
	for i := 0; i < 30; i++ {
		tr.Point(0, "spin")
	}
	evs = tr.Events()
	if len(evs) != 16 {
		t.Fatalf("ring holds %d events, want 16", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("non-contiguous seq after wrap: %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
	tr.Clear()
	if len(tr.Events()) != 0 {
		t.Fatal("Clear left events")
	}
}

func TestTracerWriter(t *testing.T) {
	tr := NewTracer(16)
	tr.SetActive(true)
	var buf bytes.Buffer
	tr.SetWriter(&buf)
	sp := tr.Begin(0, "op", F("uid", 7))
	tr.End(sp, "op")
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 || !strings.Contains(lines[0], "B op") || !strings.Contains(lines[0], "uid=7") {
		t.Fatalf("writer got %q", buf.String())
	}
}

func TestSlowLog(t *testing.T) {
	sl := NewSlowLog(16)
	sl.Observe("ignored", time.Hour, "") // threshold 0 = disabled
	if sl.Active() || len(sl.Entries()) != 0 {
		t.Fatal("disabled slow log recorded")
	}
	sl.SetThreshold(time.Millisecond)
	if !sl.Active() || sl.Threshold() != time.Millisecond {
		t.Fatal("threshold not installed")
	}
	sl.Observe("fast", 100*time.Microsecond, "")
	sl.Observe("slow", 2*time.Millisecond, "detail")
	entries := sl.Entries()
	if len(entries) != 1 || entries[0].Op != "slow" || entries[0].Detail != "detail" {
		t.Fatalf("entries = %+v", entries)
	}
	for i := 0; i < 40; i++ {
		sl.Observe("spin", time.Second, fmt.Sprintf("%d", i))
	}
	entries = sl.Entries()
	if len(entries) != 16 || entries[len(entries)-1].Detail != "39" {
		t.Fatalf("ring wrap: %d entries, last %q", len(entries), entries[len(entries)-1].Detail)
	}
	sl.Clear()
	if len(sl.Entries()) != 0 {
		t.Fatal("Clear left entries")
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("core_attach_total").Inc()
	r.Histogram("core_delete_ns", nil).Observe(123)
	r.Tracer().SetActive(true)
	sp := r.Tracer().Begin(0, "core.delete")
	r.Tracer().End(sp, "core.delete")
	r.Slow().SetThreshold(time.Nanosecond)
	r.Slow().Observe("core.delete", time.Second, "x")
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return buf.String(), resp.Header.Get("Content-Type")
	}

	body, ct := get("/metrics")
	if !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	samples, err := ParseExposition(strings.NewReader(body))
	if err != nil {
		t.Fatalf("served exposition does not parse: %v", err)
	}
	found := false
	for _, s := range samples {
		if s.Name == "core_attach_total" && s.Value == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("core_attach_total missing from scrape:\n%s", body)
	}

	body, _ = get("/metrics.json")
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["core_attach_total"] != 1 {
		t.Fatalf("json snapshot = %+v", snap)
	}

	body, _ = get("/trace?clear=1")
	var evs []Event
	if err := json.Unmarshal([]byte(body), &evs); err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 || evs[0].Name != "core.delete" {
		t.Fatalf("trace = %+v", evs)
	}
	if n := len(r.Tracer().Events()); n != 0 {
		t.Fatalf("?clear=1 left %d events", n)
	}

	body, _ = get("/slow")
	var entries []SlowEntry
	if err := json.Unmarshal([]byte(body), &entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Op != "core.delete" {
		t.Fatalf("slow = %+v", entries)
	}
}

// TestConcurrentReset drives writers, readers, and Reset together; run
// with -race this proves the reset path is race-free.
func TestConcurrentReset(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("spin_total")
	h := r.Histogram("spin_ns", nil)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					c.Inc()
					h.Observe(10)
				}
			}
		}()
	}
	for i := 0; i < 100; i++ {
		r.Reset()
		r.Snapshot()
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
