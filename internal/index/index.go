// Package index maintains secondary indexes over attribute values —
// the associative-access substrate ORION pairs with its query model.
// An index on (class, attribute) maps each scalar value (or each element
// of a set-valued attribute) to the instances holding it; instances of
// subclasses are included, matching the class-hierarchy extent semantics
// of queries.
//
// Maintenance is driven by the engine's write-through hook: install the
// Manager in the hook chain (core.MultiHook) and every New/Set/Attach/
// Delete keeps the indexes current. Indexes are in-memory and rebuilt on
// database open (Build), like ORION's memory-resident access structures.
package index

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/object"
	"repro/internal/uid"
	"repro/internal/value"
)

// Sentinel errors.
var (
	ErrDupIndex = errors.New("index: index already exists")
	ErrNoIndex  = errors.New("index: no such index")
)

// ikey identifies an index.
type ikey struct {
	class string
	attr  string
}

// vkey is the canonical map key of an indexed value: the kind tag keeps
// Int(5) and Real(5) (both rendering "5") distinct.
func vkey(v value.Value) string {
	return fmt.Sprintf("%d|%s", v.Kind(), v.String())
}

// idx is one index: value key -> posting set.
type idx struct {
	postings map[string]*uid.Set
	// perObject remembers what each object last contributed, so updates
	// can remove stale entries without needing the before-image.
	perObject map[uid.UID][]string
}

func newIdx() *idx {
	return &idx{
		postings:  make(map[string]*uid.Set),
		perObject: make(map[uid.UID][]string),
	}
}

func (x *idx) remove(id uid.UID) {
	for _, k := range x.perObject[id] {
		if s := x.postings[k]; s != nil {
			s.Remove(id)
			if s.Len() == 0 {
				delete(x.postings, k)
			}
		}
	}
	delete(x.perObject, id)
}

func (x *idx) put(id uid.UID, keys []string) {
	x.remove(id)
	for _, k := range keys {
		s := x.postings[k]
		if s == nil {
			s = uid.NewSet()
			x.postings[k] = s
		}
		s.Add(id)
	}
	if len(keys) > 0 {
		x.perObject[id] = keys
	}
}

// Manager owns the indexes of one engine. It implements core.Hook; chain
// it after the persistence hook with core.MultiHook.
type Manager struct {
	mu      sync.RWMutex
	e       *core.Engine
	indexes map[ikey]*idx
}

// NewManager returns an empty index manager.
func NewManager(e *core.Engine) *Manager {
	return &Manager{e: e, indexes: make(map[ikey]*idx)}
}

// keysFor extracts the index keys an object contributes for attr.
func keysFor(o *object.Object, attr string) []string {
	v := o.Get(attr)
	if v.IsNil() {
		return nil
	}
	if v.IsCollection() {
		keys := make([]string, 0, v.Len())
		for _, e := range v.Elems() {
			keys = append(keys, vkey(e))
		}
		return keys
	}
	return []string{vkey(v)}
}

// CreateIndex builds an index on (class, attr), populating it from the
// current extent of class and its subclasses.
func (m *Manager) CreateIndex(class, attr string) error {
	if _, err := m.e.Catalog().Attribute(class, attr); err != nil {
		return err
	}
	k := ikey{class, attr}
	m.mu.Lock()
	if _, ok := m.indexes[k]; ok {
		m.mu.Unlock()
		return fmt.Errorf("%s.%s: %w", class, attr, ErrDupIndex)
	}
	x := newIdx()
	m.indexes[k] = x
	m.mu.Unlock()
	return m.Build(class, attr)
}

// Build (re)populates an index from the engine's extents.
func (m *Manager) Build(class, attr string) error {
	k := ikey{class, attr}
	m.mu.Lock()
	defer m.mu.Unlock()
	x, ok := m.indexes[k]
	if !ok {
		return fmt.Errorf("%s.%s: %w", class, attr, ErrNoIndex)
	}
	*x = *newIdx()
	ext, err := m.e.Extent(class, true)
	if err != nil {
		return err
	}
	for _, id := range ext {
		o, err := m.e.Get(id)
		if err != nil {
			continue
		}
		x.put(id, keysFor(o, attr))
	}
	return nil
}

// DropIndex removes the index.
func (m *Manager) DropIndex(class, attr string) error {
	k := ikey{class, attr}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.indexes[k]; !ok {
		return fmt.Errorf("%s.%s: %w", class, attr, ErrNoIndex)
	}
	delete(m.indexes, k)
	return nil
}

// Has reports whether an index exists on (class, attr).
func (m *Manager) Has(class, attr string) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	_, ok := m.indexes[ikey{class, attr}]
	return ok
}

// Lookup returns the instances of class (or subclasses) whose attr equals
// v, in UID order.
func (m *Manager) Lookup(class, attr string, v value.Value) ([]uid.UID, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	x, ok := m.indexes[ikey{class, attr}]
	if !ok {
		return nil, fmt.Errorf("%s.%s: %w", class, attr, ErrNoIndex)
	}
	s := x.postings[vkey(v)]
	out := append([]uid.UID(nil), s.Slice()...)
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out, nil
}

// OnWrite implements core.Hook: refresh every index the written object
// participates in.
func (m *Manager) OnWrite(_ core.TxnID, o *object.Object, _ uid.UID) error {
	cl, err := m.e.Catalog().ClassByID(o.Class())
	if err != nil {
		return nil // class dropped mid-flight; nothing to index
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for k, x := range m.indexes {
		if !m.e.Catalog().IsA(cl.Name, k.class) {
			continue
		}
		x.put(o.UID(), keysFor(o, k.attr))
	}
	return nil
}

// OnDelete implements core.Hook.
func (m *Manager) OnDelete(_ core.TxnID, id uid.UID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, x := range m.indexes {
		x.remove(id)
	}
	return nil
}

// Stats returns (entries, distinct values) for an index.
func (m *Manager) Stats(class, attr string) (objects, values int, err error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	x, ok := m.indexes[ikey{class, attr}]
	if !ok {
		return 0, 0, fmt.Errorf("%s.%s: %w", class, attr, ErrNoIndex)
	}
	return len(x.perObject), len(x.postings), nil
}
