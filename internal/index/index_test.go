package index

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/object"
	"repro/internal/schema"
	"repro/internal/uid"
	"repro/internal/value"
)

func fixture(t *testing.T) (*core.Engine, *Manager) {
	t.Helper()
	cat := schema.NewCatalog()
	if _, err := cat.DefineClass(schema.ClassDef{Name: "Part", Attributes: []schema.AttrSpec{
		schema.NewAttr("Material", schema.StringDomain),
		schema.NewAttr("Mass", schema.IntDomain),
		schema.NewSetAttr("Tags", schema.StringDomain),
	}}); err != nil {
		t.Fatal(err)
	}
	e := core.NewEngine(cat)
	m := NewManager(e)
	e.SetHook(core.MultiHook{m})
	return e, m
}

func mk(t *testing.T, e *core.Engine, mat string, mass int64) uid.UID {
	t.Helper()
	o, err := e.New("Part", map[string]value.Value{
		"Material": value.Str(mat), "Mass": value.Int(mass),
	})
	if err != nil {
		t.Fatal(err)
	}
	return o.UID()
}

func TestCreateAndLookup(t *testing.T) {
	e, m := fixture(t)
	a := mk(t, e, "steel", 5)
	b := mk(t, e, "steel", 7)
	c := mk(t, e, "alu", 5)
	// Index created AFTER the data: Build populates from the extent.
	if err := m.CreateIndex("Part", "Material"); err != nil {
		t.Fatal(err)
	}
	got, err := m.Lookup("Part", "Material", value.Str("steel"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []uid.UID{a, b}) {
		t.Fatalf("steel = %v", got)
	}
	got, _ = m.Lookup("Part", "Material", value.Str("alu"))
	if !reflect.DeepEqual(got, []uid.UID{c}) {
		t.Fatalf("alu = %v", got)
	}
	got, _ = m.Lookup("Part", "Material", value.Str("ghost"))
	if len(got) != 0 {
		t.Fatalf("ghost = %v", got)
	}
	objects, values, err := m.Stats("Part", "Material")
	if err != nil || objects != 3 || values != 2 {
		t.Fatalf("stats = %d/%d, %v", objects, values, err)
	}
}

func TestHookMaintainsIndex(t *testing.T) {
	e, m := fixture(t)
	if err := m.CreateIndex("Part", "Material"); err != nil {
		t.Fatal(err)
	}
	// Insert after index creation: hook inserts.
	a := mk(t, e, "steel", 5)
	got, _ := m.Lookup("Part", "Material", value.Str("steel"))
	if !reflect.DeepEqual(got, []uid.UID{a}) {
		t.Fatalf("after insert = %v", got)
	}
	// Update moves the posting.
	if err := e.Set(a, "Material", value.Str("brass")); err != nil {
		t.Fatal(err)
	}
	if got, _ := m.Lookup("Part", "Material", value.Str("steel")); len(got) != 0 {
		t.Fatalf("stale posting: %v", got)
	}
	if got, _ := m.Lookup("Part", "Material", value.Str("brass")); !reflect.DeepEqual(got, []uid.UID{a}) {
		t.Fatalf("after update = %v", got)
	}
	// Delete removes it.
	if _, err := e.Delete(a); err != nil {
		t.Fatal(err)
	}
	if got, _ := m.Lookup("Part", "Material", value.Str("brass")); len(got) != 0 {
		t.Fatalf("posting survived delete: %v", got)
	}
}

func TestKindsDoNotCollide(t *testing.T) {
	e, m := fixture(t)
	if err := m.CreateIndex("Part", "Mass"); err != nil {
		t.Fatal(err)
	}
	a := mk(t, e, "x", 5)
	// Real 5 must not hit the Int 5 posting.
	got, _ := m.Lookup("Part", "Mass", value.Real(5))
	if len(got) != 0 {
		t.Fatalf("Real(5) matched Int(5): %v", got)
	}
	got, _ = m.Lookup("Part", "Mass", value.Int(5))
	if !reflect.DeepEqual(got, []uid.UID{a}) {
		t.Fatalf("Int(5) = %v", got)
	}
}

func TestSetValuedAttributeIndexedPerElement(t *testing.T) {
	e, m := fixture(t)
	if err := m.CreateIndex("Part", "Tags"); err != nil {
		t.Fatal(err)
	}
	o, _ := e.New("Part", map[string]value.Value{
		"Tags": value.SetOf(value.Str("new"), value.Str("fragile")),
	})
	for _, tag := range []string{"new", "fragile"} {
		got, _ := m.Lookup("Part", "Tags", value.Str(tag))
		if !reflect.DeepEqual(got, []uid.UID{o.UID()}) {
			t.Fatalf("tag %q = %v", tag, got)
		}
	}
	// Dropping a tag removes only that posting.
	e.Set(o.UID(), "Tags", value.SetOf(value.Str("fragile")))
	if got, _ := m.Lookup("Part", "Tags", value.Str("new")); len(got) != 0 {
		t.Fatalf("stale tag: %v", got)
	}
}

func TestSubclassInstancesIndexed(t *testing.T) {
	e, m := fixture(t)
	if _, err := e.Catalog().DefineClass(schema.ClassDef{
		Name: "Bolt", Superclasses: []string{"Part"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.CreateIndex("Part", "Material"); err != nil {
		t.Fatal(err)
	}
	bolt, _ := e.New("Bolt", map[string]value.Value{"Material": value.Str("steel")})
	got, _ := m.Lookup("Part", "Material", value.Str("steel"))
	if !reflect.DeepEqual(got, []uid.UID{bolt.UID()}) {
		t.Fatalf("subclass instance not indexed: %v", got)
	}
}

func TestIndexErrors(t *testing.T) {
	_, m := fixture(t)
	if err := m.CreateIndex("Part", "Ghost"); !errors.Is(err, schema.ErrNoAttr) {
		t.Fatalf("ghost attr: %v", err)
	}
	if err := m.CreateIndex("Part", "Material"); err != nil {
		t.Fatal(err)
	}
	if err := m.CreateIndex("Part", "Material"); !errors.Is(err, ErrDupIndex) {
		t.Fatalf("dup: %v", err)
	}
	if _, err := m.Lookup("Part", "Mass", value.Int(1)); !errors.Is(err, ErrNoIndex) {
		t.Fatalf("missing index: %v", err)
	}
	if err := m.DropIndex("Part", "Material"); err != nil {
		t.Fatal(err)
	}
	if err := m.DropIndex("Part", "Material"); !errors.Is(err, ErrNoIndex) {
		t.Fatalf("double drop: %v", err)
	}
	if m.Has("Part", "Material") {
		t.Fatal("Has after drop")
	}
}

func TestChainedWithPersistenceHook(t *testing.T) {
	// The index manager composes with another hook through MultiHook and
	// both see every write.
	e, _ := func() (*core.Engine, *Manager) {
		cat := schema.NewCatalog()
		cat.DefineClass(schema.ClassDef{Name: "Part", Attributes: []schema.AttrSpec{
			schema.NewAttr("Material", schema.StringDomain),
		}})
		return core.NewEngine(cat), nil
	}()
	m := NewManager(e)
	counter := &countingHook{}
	e.SetHook(core.MultiHook{counter, m})
	if err := m.CreateIndex("Part", "Material"); err != nil {
		t.Fatal(err)
	}
	o, _ := e.New("Part", map[string]value.Value{"Material": value.Str("x")})
	if counter.writes == 0 {
		t.Fatal("first hook skipped")
	}
	got, _ := m.Lookup("Part", "Material", value.Str("x"))
	if len(got) != 1 {
		t.Fatal("second hook skipped")
	}
	e.Delete(o.UID())
	if counter.deletes == 0 {
		t.Fatal("delete hook skipped")
	}
}

type countingHook struct{ writes, deletes int }

func (h *countingHook) OnWrite(core.TxnID, *object.Object, uid.UID) error { h.writes++; return nil }
func (h *countingHook) OnDelete(core.TxnID, uid.UID) error                { h.deletes++; return nil }
