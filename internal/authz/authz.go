// Package authz implements §6 of the paper: composite objects as a unit
// of authorization, on the ORION authorization model of [RABI88].
//
// The model's three concepts:
//
//   - implicit authorization: authorizations are deduced from explicitly
//     stored ones instead of materializing a grant per object. A grant on
//     a class implies the same authorization on all its instances and on
//     all components of those instances; a grant on a composite object
//     implies it on every component of the composite object.
//   - positive and negative authorizations: prohibition (¬R, ¬W) is
//     distinct from absence.
//   - strong and weak authorizations: weak authorizations can be
//     overridden by others; strong ones (and everything they imply)
//     cannot.
//
// Implication between rights: a positive Write implies a positive Read; a
// negative Read implies a negative Write.
//
// When an object is a component of several composite objects, it receives
// implied authorizations from each; the resulting authorization is
// resolved right-by-right: a strong authorization beats a weak one, equal
// strength with opposite signs is a conflict (the paper's Figure 6), and
// the paper's rule "the resulting authorization is the strongest of all
// the implied authorizations" falls out (sR + sW = sW; s¬R + s¬W = s¬R).
// Grant time enforces the same rule: a new authorization that would
// conflict with existing explicit or implied authorizations on any
// affected object is rejected.
package authz

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/uid"
)

// Right is an authorization type.
type Right uint8

// The two authorization types of Figure 6. (The full ORION model has
// more; R and W are the ones the paper's composite-object discussion
// uses.)
const (
	Read Right = iota
	Write
)

// String returns "R" or "W".
func (r Right) String() string {
	if r == Read {
		return "R"
	}
	return "W"
}

// Strength distinguishes weak (overridable) from strong authorizations.
type Strength uint8

// Strengths.
const (
	Weak Strength = iota
	Strong
)

// Auth is one authorization: sign × strength × right.
type Auth struct {
	Positive bool
	Strength Strength
	Right    Right
}

// Convenience constructors matching the paper's notation.
var (
	SR  = Auth{Positive: true, Strength: Strong, Right: Read}
	SW  = Auth{Positive: true, Strength: Strong, Right: Write}
	SNR = Auth{Positive: false, Strength: Strong, Right: Read}  // s¬R
	SNW = Auth{Positive: false, Strength: Strong, Right: Write} // s¬W
	WR  = Auth{Positive: true, Strength: Weak, Right: Read}
	WW  = Auth{Positive: true, Strength: Weak, Right: Write}
	WNR = Auth{Positive: false, Strength: Weak, Right: Read}  // w¬R
	WNW = Auth{Positive: false, Strength: Weak, Right: Write} // w¬W
)

// AllAuths lists the eight authorizations in Figure 6's order.
var AllAuths = []Auth{SR, SW, SNR, SNW, WR, WW, WNR, WNW}

// String renders the paper's notation: sR, s¬W, wR, ...
func (a Auth) String() string {
	s := "w"
	if a.Strength == Strong {
		s = "s"
	}
	if !a.Positive {
		s += "¬"
	}
	return s + a.Right.String()
}

// closure expands an authorization through the implication rules:
// +W ⇒ +R, ¬R ⇒ ¬W.
func (a Auth) closure() []Auth {
	out := []Auth{a}
	if a.Positive && a.Right == Write {
		out = append(out, Auth{Positive: true, Strength: a.Strength, Right: Read})
	}
	if !a.Positive && a.Right == Read {
		out = append(out, Auth{Positive: false, Strength: a.Strength, Right: Write})
	}
	return out
}

// outcome is the resolved authorization state for one right.
type outcome struct {
	defined  bool
	positive bool
	strength Strength
	conflict bool
}

// Resolution is the combined effect of a set of authorizations.
type Resolution struct {
	// Conflict is true when two equal-strength authorizations with
	// opposite signs meet on some right.
	Conflict bool
	// Generators is a minimal set of authorizations whose closure equals
	// the resolved state (empty when Conflict or when nothing applies).
	Generators []Auth
}

// String renders the resolution like a Figure 6 cell.
func (r Resolution) String() string {
	if r.Conflict {
		return "Conflict"
	}
	if len(r.Generators) == 0 {
		return "—"
	}
	parts := make([]string, len(r.Generators))
	for i, g := range r.Generators {
		parts[i] = g.String()
	}
	return strings.Join(parts, ",")
}

// Combine resolves a set of authorizations (implied on one object from
// several sources) into the resulting authorization, right by right.
// Implications are materialized first (+W contributes +R, ¬R contributes
// ¬W); then, per right, strong authorizations are applied before weak ones
// so the result is independent of input order: equal-strength opposite
// signs conflict, and a strong authorization overrides weak opposition.
func Combine(auths ...Auth) Resolution {
	var items []Auth
	for _, a := range auths {
		items = append(items, a.closure()...)
	}
	per := map[Right]*outcome{Read: {}, Write: {}}
	for _, pass := range []Strength{Strong, Weak} {
		for _, c := range items {
			if c.Strength != pass {
				continue
			}
			o := per[c.Right]
			if o.conflict {
				continue
			}
			if !o.defined {
				o.defined = true
				o.positive = c.Positive
				o.strength = c.Strength
				continue
			}
			if o.positive == c.Positive {
				continue // same sign; strength already maximal (strong pass ran first)
			}
			if c.Strength < o.strength {
				continue // weak opposition to an established strong outcome
			}
			o.conflict = true
		}
	}
	res := Resolution{}
	if per[Read].conflict || per[Write].conflict {
		res.Conflict = true
		return res
	}
	res.Generators = minimalGenerators(per)
	return res
}

// minimalGenerators reconstructs the smallest set of Auth values whose
// closure produces the per-right outcomes.
func minimalGenerators(per map[Right]*outcome) []Auth {
	var gens []Auth
	r, w := per[Read], per[Write]
	// Positive side: +W covers +R at the same strength.
	if w.defined && w.positive {
		gens = append(gens, Auth{Positive: true, Strength: w.strength, Right: Write})
		if r.defined && r.positive && r.strength > w.strength {
			gens = append(gens, Auth{Positive: true, Strength: r.strength, Right: Read})
		}
	} else if r.defined && r.positive {
		gens = append(gens, Auth{Positive: true, Strength: r.strength, Right: Read})
	}
	// Negative side: ¬R covers ¬W at the same strength.
	if r.defined && !r.positive {
		gens = append(gens, Auth{Positive: false, Strength: r.strength, Right: Read})
		if w.defined && !w.positive && w.strength > r.strength {
			gens = append(gens, Auth{Positive: false, Strength: w.strength, Right: Write})
		}
	} else if w.defined && !w.positive {
		gens = append(gens, Auth{Positive: false, Strength: w.strength, Right: Write})
	}
	return gens
}

// ErrConflict is returned when a grant would conflict with existing
// explicit or implied authorizations.
var ErrConflict = errors.New("authz: authorization conflict")

// Store holds explicit authorizations and answers implicit-authorization
// queries against the composite-object graph.
type Store struct {
	mu     sync.Mutex
	e      *core.Engine
	class  map[string]map[string][]Auth  // class -> subject -> auths
	object map[uid.UID]map[string][]Auth // object -> subject -> auths
	// Grant authority (§6 opening sentence; see grantauth.go).
	objOwner   map[uid.UID]string
	classOwner map[string]string
	grantAuth  map[uid.UID]map[string]bool
}

// NewStore returns an empty authorization store over the engine.
func NewStore(e *core.Engine) *Store {
	return &Store{
		e:      e,
		class:  make(map[string]map[string][]Auth),
		object: make(map[uid.UID]map[string][]Auth),
	}
}

// GrantObject grants a on the composite object rooted at obj to subject.
// The grant implies the same authorization on every component; it is
// rejected with ErrConflict if it would conflict with the authorizations
// (explicit or implied) already in effect on obj or any component.
func (s *Store) GrantObject(subject string, obj uid.UID, a Auth) error {
	affected, err := s.withComponents(obj)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, id := range affected {
		existing, err := s.impliedLocked(subject, id)
		if err != nil {
			return err
		}
		if Combine(append(existing, a)...).Conflict {
			return fmt.Errorf("authz: granting %s on %v to %q conflicts on component %v: %w",
				a, obj, subject, id, ErrConflict)
		}
	}
	m := s.object[obj]
	if m == nil {
		m = make(map[string][]Auth)
		s.object[obj] = m
	}
	m[subject] = append(m[subject], a)
	return nil
}

// GrantClass grants a on the composite class to subject: it implies the
// same authorization on all instances of the class and on all components
// of those instances. Conflicting grants are rejected.
func (s *Store) GrantClass(subject, class string, a Auth) error {
	if _, err := s.e.Catalog().Class(class); err != nil {
		return err
	}
	instances, err := s.e.Extent(class, true)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	checked := uid.NewSet()
	for _, inst := range instances {
		affected, err := s.withComponents(inst)
		if err != nil {
			return err
		}
		for _, id := range affected {
			if !checked.Add(id) {
				continue
			}
			existing, err := s.impliedLocked(subject, id)
			if err != nil {
				return err
			}
			if Combine(append(existing, a)...).Conflict {
				return fmt.Errorf("authz: granting %s on class %q to %q conflicts on %v: %w",
					a, class, subject, id, ErrConflict)
			}
		}
	}
	m := s.class[class]
	if m == nil {
		m = make(map[string][]Auth)
		s.class[class] = m
	}
	m[subject] = append(m[subject], a)
	return nil
}

// RevokeObject removes every authorization subject holds explicitly on
// obj.
func (s *Store) RevokeObject(subject string, obj uid.UID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m := s.object[obj]; m != nil {
		delete(m, subject)
	}
}

// RevokeClass removes every authorization subject holds explicitly on the
// class.
func (s *Store) RevokeClass(subject, class string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m := s.class[class]; m != nil {
		delete(m, subject)
	}
}

// withComponents returns obj plus all its components.
func (s *Store) withComponents(obj uid.UID) ([]uid.UID, error) {
	comps, err := s.e.ComponentsOf(obj, core.QueryOpts{})
	if err != nil {
		return nil, err
	}
	return append([]uid.UID{obj}, comps...), nil
}

// impliedLocked collects every authorization subject holds on obj, from:
// explicit object grants on obj; explicit grants on any composite object
// containing obj (ancestors); class grants on obj's class; and class
// grants on the class of any ancestor (composite class authorization).
func (s *Store) impliedLocked(subject string, obj uid.UID) ([]Auth, error) {
	var out []Auth
	add := func(target uid.UID) error {
		if m := s.object[target]; m != nil {
			out = append(out, m[subject]...)
		}
		cl, err := s.e.ClassOf(target)
		if err != nil {
			return err
		}
		// A grant on a superclass covers instances of subclasses.
		for name, grants := range s.class {
			if s.e.Catalog().IsA(cl.Name, name) {
				out = append(out, grants[subject]...)
			}
		}
		return nil
	}
	if err := add(obj); err != nil {
		return nil, err
	}
	ancestors, err := s.e.AncestorsOf(obj, core.QueryOpts{})
	if err != nil {
		return nil, err
	}
	for _, a := range ancestors {
		if err := add(a); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Effective resolves the authorizations subject holds on obj.
func (s *Store) Effective(subject string, obj uid.UID) (Resolution, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	auths, err := s.impliedLocked(subject, obj)
	if err != nil {
		return Resolution{}, err
	}
	return Combine(auths...), nil
}

// Check reports whether subject may exercise right on obj: the resolved
// authorizations must positively include the right. Absence of
// authorization denies; a conflict denies (grant-time checking makes
// conflicts unreachable through this store, but implied states are
// re-checked defensively).
func (s *Store) Check(subject string, obj uid.UID, right Right) (bool, error) {
	res, err := s.Effective(subject, obj)
	if err != nil {
		return false, err
	}
	if res.Conflict {
		return false, nil
	}
	for _, g := range res.Generators {
		for _, c := range g.closure() {
			if c.Right == right {
				return c.Positive, nil
			}
		}
	}
	return false, nil
}

// Figure6 computes the paper's Figure 6: for every pair (a, b) of
// authorizations implied on a shared component from two composite-object
// grants, the resulting authorization or "Conflict". Rows and columns are
// in AllAuths order.
func Figure6() [][]Resolution {
	out := make([][]Resolution, len(AllAuths))
	for i, a := range AllAuths {
		out[i] = make([]Resolution, len(AllAuths))
		for j, b := range AllAuths {
			out[i][j] = Combine(a, b)
		}
	}
	return out
}

// FormatFigure6 renders the Figure 6 matrix.
func FormatFigure6() string {
	m := Figure6()
	const w = 9
	pad := func(s string) string {
		// Pad by rune count (¬ is multibyte).
		n := len([]rune(s))
		for ; n < w; n++ {
			s += " "
		}
		return s
	}
	var b strings.Builder
	b.WriteString(pad(""))
	for _, a := range AllAuths {
		b.WriteString(pad(a.String()))
	}
	b.WriteString("\n")
	for i, a := range AllAuths {
		b.WriteString(pad(a.String()))
		for j := range AllAuths {
			b.WriteString(pad(m[i][j].String()))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// storeState is the serialized form of the explicit grants, owners, and
// delegations.
type storeState struct {
	Class      map[string]map[string][]Auth  `json:"class,omitempty"`
	Object     map[uid.UID]map[string][]Auth `json:"object,omitempty"`
	ObjOwner   map[uid.UID]string            `json:"obj_owner,omitempty"`
	ClassOwner map[string]string             `json:"class_owner,omitempty"`
	GrantAuth  map[uid.UID]map[string]bool   `json:"grant_auth,omitempty"`
}

// Save serializes the explicit grants, owners, and grant delegations.
func (s *Store) Save(w io.Writer) error {
	s.mu.Lock()
	st := storeState{
		Class: s.class, Object: s.object,
		ObjOwner: s.objOwner, ClassOwner: s.classOwner, GrantAuth: s.grantAuth,
	}
	b, err := json.Marshal(&st)
	s.mu.Unlock()
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

// Load restores state saved by Save, replacing current contents.
func (s *Store) Load(r io.Reader) error {
	var st storeState
	if err := json.NewDecoder(r).Decode(&st); err != nil {
		return fmt.Errorf("authz: load: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.class = st.Class
	if s.class == nil {
		s.class = make(map[string]map[string][]Auth)
	}
	s.object = st.Object
	if s.object == nil {
		s.object = make(map[uid.UID]map[string][]Auth)
	}
	s.objOwner = st.ObjOwner
	s.classOwner = st.ClassOwner
	s.grantAuth = st.GrantAuth
	return nil
}

// Subjects returns all subjects with explicit grants, sorted (for the
// figures tool).
func (s *Store) Subjects() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	set := map[string]bool{}
	for _, m := range s.class {
		for sub := range m {
			set[sub] = true
		}
	}
	for _, m := range s.object {
		for sub := range m {
			set[sub] = true
		}
	}
	out := make([]string, 0, len(set))
	for sub := range set {
		out = append(out, sub)
	}
	sort.Strings(out)
	return out
}
