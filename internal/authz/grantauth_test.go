package authz

import (
	"bytes"
	"errors"
	"testing"
)

func TestOwnerMayGrant(t *testing.T) {
	f := newFigEngine(t)
	f.st.SetObjectOwner(f.i, "owner")
	if got := f.st.ObjectOwner(f.i); got != "owner" {
		t.Fatalf("ObjectOwner = %q", got)
	}
	if !f.st.CanGrant("owner", f.i) {
		t.Fatal("owner cannot grant")
	}
	if f.st.CanGrant("stranger", f.i) {
		t.Fatal("stranger can grant")
	}
	if err := f.st.GrantObjectAs("owner", "alice", f.i, SR); err != nil {
		t.Fatal(err)
	}
	if ok, _ := f.st.Check("alice", f.o4, Read); !ok {
		t.Fatal("grant via owner not effective")
	}
	if err := f.st.GrantObjectAs("stranger", "bob", f.i, SR); !errors.Is(err, ErrNotAuthorized) {
		t.Fatalf("stranger grant: %v", err)
	}
}

func TestDelegatedGrantAuthority(t *testing.T) {
	f := newFigEngine(t)
	f.st.SetObjectOwner(f.i, "owner")
	// Delegation requires authority itself.
	if err := f.st.DelegateGrant("stranger", "deputy", f.i); !errors.Is(err, ErrNotAuthorized) {
		t.Fatalf("stranger delegation: %v", err)
	}
	if err := f.st.DelegateGrant("owner", "deputy", f.i); err != nil {
		t.Fatal(err)
	}
	if !f.st.CanGrant("deputy", f.i) {
		t.Fatal("deputy cannot grant after delegation")
	}
	if err := f.st.GrantObjectAs("deputy", "carol", f.i, WR); err != nil {
		t.Fatal(err)
	}
	// A delegate may even delegate further (has grant authority).
	if err := f.st.DelegateGrant("deputy", "subdeputy", f.i); err != nil {
		t.Fatal(err)
	}
	// Revocation is owner-only.
	if err := f.st.RevokeGrantAuthority("deputy", "subdeputy", f.i); !errors.Is(err, ErrNotAuthorized) {
		t.Fatalf("non-owner revoke: %v", err)
	}
	if err := f.st.RevokeGrantAuthority("owner", "deputy", f.i); err != nil {
		t.Fatal(err)
	}
	if f.st.CanGrant("deputy", f.i) {
		t.Fatal("deputy can still grant after revocation")
	}
}

func TestClassOwnerGrants(t *testing.T) {
	f := newFigEngine(t)
	f.st.SetClassOwner("Node", "dba")
	if got := f.st.ClassOwner("Node"); got != "dba" {
		t.Fatalf("ClassOwner = %q", got)
	}
	if err := f.st.GrantClassAs("dba", "alice", "Node", WR); err != nil {
		t.Fatal(err)
	}
	if ok, _ := f.st.Check("alice", f.q, Read); !ok {
		t.Fatal("class grant not effective")
	}
	if err := f.st.GrantClassAs("alice", "bob", "Node", WR); !errors.Is(err, ErrNotAuthorized) {
		t.Fatalf("non-owner class grant: %v", err)
	}
	// Unowned class: nobody can use the As path.
	if err := f.st.GrantClassAs("dba", "x", "Ghost", WR); !errors.Is(err, ErrNotAuthorized) {
		t.Fatalf("unowned class: %v", err)
	}
}

func TestGrantAuthorityDoesNotBypassConflicts(t *testing.T) {
	f := newFigEngine(t)
	f.st.SetObjectOwner(f.j, "owner")
	f.st.SetObjectOwner(f.k, "owner")
	if err := f.st.GrantObjectAs("owner", "alice", f.j, SNR); err != nil {
		t.Fatal(err)
	}
	// Even the owner's grant is subject to the Figure 6 conflict rules.
	if err := f.st.GrantObjectAs("owner", "alice", f.k, SW); !errors.Is(err, ErrConflict) {
		t.Fatalf("conflicting owner grant: %v", err)
	}
}

func TestGrantAuthorityPersists(t *testing.T) {
	f := newFigEngine(t)
	f.st.SetObjectOwner(f.i, "owner")
	f.st.SetClassOwner("Node", "dba")
	if err := f.st.DelegateGrant("owner", "deputy", f.i); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	st2 := NewStore(f.e)
	if err := st2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if st2.ObjectOwner(f.i) != "owner" || st2.ClassOwner("Node") != "dba" {
		t.Fatal("owners lost in round trip")
	}
	if !st2.CanGrant("deputy", f.i) {
		t.Fatal("delegation lost in round trip")
	}
}
