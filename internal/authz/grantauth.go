package authz

import (
	"errors"
	"fmt"

	"repro/internal/uid"
)

// Grant authority, per §6's opening: "the user (who created the composite
// object or who has the grant authorization on it) needs to grant
// authorization on the composite object as a single unit". The Store
// tracks an owner per composite object (and per class) plus delegated
// grant authority; GrantObjectAs/GrantClassAs enforce that only the owner
// or a delegate may grant. The plain GrantObject/GrantClass methods remain
// the administrative path (no authority check), used by the system itself.

// ErrNotAuthorized is returned when a granter lacks grant authority.
var ErrNotAuthorized = errors.New("authz: granter lacks grant authority")

// SetObjectOwner records the creator/owner of a composite object.
func (s *Store) SetObjectOwner(obj uid.UID, owner string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.objOwner == nil {
		s.objOwner = make(map[uid.UID]string)
	}
	s.objOwner[obj] = owner
}

// ObjectOwner returns the recorded owner of obj ("" if none).
func (s *Store) ObjectOwner(obj uid.UID) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.objOwner[obj]
}

// SetClassOwner records the owner of a class.
func (s *Store) SetClassOwner(class, owner string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.classOwner == nil {
		s.classOwner = make(map[string]string)
	}
	s.classOwner[class] = owner
}

// ClassOwner returns the recorded owner of the class ("" if none).
func (s *Store) ClassOwner(class string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.classOwner[class]
}

// DelegateGrant gives subject the grant authorization on obj. Only the
// owner (or an existing delegate) may delegate.
func (s *Store) DelegateGrant(granter, subject string, obj uid.UID) error {
	if !s.CanGrant(granter, obj) {
		return fmt.Errorf("%q on %v: %w", granter, obj, ErrNotAuthorized)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.grantAuth == nil {
		s.grantAuth = make(map[uid.UID]map[string]bool)
	}
	m := s.grantAuth[obj]
	if m == nil {
		m = make(map[string]bool)
		s.grantAuth[obj] = m
	}
	m[subject] = true
	return nil
}

// RevokeGrantAuthority removes a delegation (owner-only).
func (s *Store) RevokeGrantAuthority(owner, subject string, obj uid.UID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.objOwner[obj] != owner {
		return fmt.Errorf("%q is not the owner of %v: %w", owner, obj, ErrNotAuthorized)
	}
	if m := s.grantAuth[obj]; m != nil {
		delete(m, subject)
	}
	return nil
}

// CanGrant reports whether subject may grant authorizations on obj: the
// owner always can; delegates can.
func (s *Store) CanGrant(subject string, obj uid.UID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.objOwner[obj] == subject && subject != "" {
		return true
	}
	if m := s.grantAuth[obj]; m != nil && m[subject] {
		return true
	}
	return false
}

// GrantObjectAs grants a on the composite object rooted at obj to
// subject, on behalf of granter, enforcing grant authority before the
// usual conflict checking.
func (s *Store) GrantObjectAs(granter, subject string, obj uid.UID, a Auth) error {
	if !s.CanGrant(granter, obj) {
		return fmt.Errorf("%q granting on %v: %w", granter, obj, ErrNotAuthorized)
	}
	return s.GrantObject(subject, obj, a)
}

// GrantClassAs grants a on the class to subject on behalf of granter, who
// must be the class owner.
func (s *Store) GrantClassAs(granter, subject, class string, a Auth) error {
	s.mu.Lock()
	owner := s.classOwner[class]
	s.mu.Unlock()
	if owner == "" || owner != granter {
		return fmt.Errorf("%q granting on class %q: %w", granter, class, ErrNotAuthorized)
	}
	return s.GrantClass(subject, class, a)
}
