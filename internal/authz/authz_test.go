package authz

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/schema"
	"repro/internal/uid"
	"repro/internal/value"
)

func TestAuthStringNotation(t *testing.T) {
	cases := map[Auth]string{
		SR: "sR", SW: "sW", SNR: "s¬R", SNW: "s¬W",
		WR: "wR", WW: "wW", WNR: "w¬R", WNW: "w¬W",
	}
	for a, want := range cases {
		if a.String() != want {
			t.Errorf("%+v.String() = %q, want %q", a, a.String(), want)
		}
	}
}

func TestImplicationClosure(t *testing.T) {
	// +W ⇒ +R.
	c := SW.closure()
	if len(c) != 2 || c[1] != SR {
		t.Fatalf("closure(sW) = %v", c)
	}
	// ¬R ⇒ ¬W.
	c = SNR.closure()
	if len(c) != 2 || c[1] != SNW {
		t.Fatalf("closure(s¬R) = %v", c)
	}
	// +R and ¬W imply nothing further.
	if len(SR.closure()) != 1 || len(WNW.closure()) != 1 {
		t.Fatal("closure of sR/w¬W should be singletons")
	}
}

func TestCombinePaperExamples(t *testing.T) {
	// "if a user receives a strong R authorization from Instance[j] and a
	// strong W authorization from Instance[k], the authorization implied
	// on Instance[o'] is a strong W".
	res := Combine(SR, SW)
	if res.Conflict || res.String() != "sW" {
		t.Fatalf("sR+sW = %v", res)
	}
	// "if a user receives a strong ¬R from Instance[j] and a strong ¬W
	// from Instance[k], the authorization implied is a strong ¬R".
	res = Combine(SNR, SNW)
	if res.Conflict || res.String() != "s¬R" {
		t.Fatalf("s¬R+s¬W = %v", res)
	}
	// "a later attempt to grant the user a strong W ... will fail. This is
	// because a ¬R implies a ¬W, which contradicts the positive strong W".
	res = Combine(SNR, SW)
	if !res.Conflict {
		t.Fatalf("s¬R+sW = %v, want Conflict", res)
	}
}

func TestCombineStrongOverridesWeak(t *testing.T) {
	// A weak authorization can be overridden; a strong one cannot.
	res := Combine(SW, WNR)
	if res.Conflict || res.String() != "sW" {
		t.Fatalf("sW+w¬R = %v", res)
	}
	res = Combine(SNR, WW)
	if res.Conflict || res.String() != "s¬R" {
		t.Fatalf("s¬R+wW = %v", res)
	}
	// Mixed rights at mixed strengths: pointwise resolution keeps the
	// non-contradicted weak piece.
	res = Combine(SNW, WW)
	if res.Conflict || res.String() != "wR,s¬W" {
		t.Fatalf("s¬W+wW = %v", res)
	}
}

func TestCombineWeakWeakConflicts(t *testing.T) {
	res := Combine(WR, WNR)
	if !res.Conflict {
		t.Fatalf("wR+w¬R = %v, want Conflict", res)
	}
	res = Combine(WW, WNW)
	if !res.Conflict {
		t.Fatalf("wW+w¬W = %v, want Conflict", res)
	}
	// w¬W does not contradict wR (different rights, no implication).
	res = Combine(WR, WNW)
	if res.Conflict || res.String() != "wR,w¬W" {
		t.Fatalf("wR+w¬W = %v", res)
	}
}

func TestCombineCompatiblePairs(t *testing.T) {
	cases := []struct {
		a, b Auth
		want string
	}{
		{SR, SR, "sR"},
		{SR, SNW, "sR,s¬W"},
		{SR, WR, "sR"},
		{SR, WW, "wW,sR"},
		{SR, WNR, "sR,w¬W"}, // the overridden w¬R still contributes its implied w¬W
		{SW, WR, "sW"},
		{SNW, SNR, "s¬R"},
		{WR, WW, "wW"},
		{WNR, WNW, "w¬R"},
	}
	for _, c := range cases {
		got := Combine(c.a, c.b)
		if got.Conflict {
			t.Errorf("%s+%s = Conflict, want %q", c.a, c.b, c.want)
			continue
		}
		if got.String() != c.want {
			t.Errorf("%s+%s = %q, want %q", c.a, c.b, got.String(), c.want)
		}
	}
}

// figure6Expected is the reconstructed Figure 6: the resulting implicit
// authorization on a component shared by two composite objects, for every
// pair of authorizations granted on the two roots. Order: sR sW s¬R s¬W
// wR wW w¬R w¬W. "C" = Conflict.
var figure6Expected = [][]string{
	/* sR  */ {"sR", "sW", "C", "sR,s¬W", "sR", "wW,sR", "sR,w¬W", "sR,w¬W"},
	/* sW  */ {"sW", "sW", "C", "C", "sW", "sW", "sW", "sW"},
	/* s¬R */ {"C", "C", "s¬R", "s¬R", "s¬R", "s¬R", "s¬R", "s¬R"},
	/* s¬W */ {"sR,s¬W", "C", "s¬R", "s¬W", "wR,s¬W", "wR,s¬W", "w¬R,s¬W", "s¬W"},
	/* wR  */ {"sR", "sW", "s¬R", "wR,s¬W", "wR", "wW", "C", "wR,w¬W"},
	/* wW  */ {"wW,sR", "sW", "s¬R", "wR,s¬W", "wW", "wW", "C", "C"},
	/* w¬R */ {"sR,w¬W", "sW", "s¬R", "w¬R,s¬W", "C", "C", "w¬R", "w¬R"},
	/* w¬W */ {"sR,w¬W", "sW", "s¬R", "s¬W", "wR,w¬W", "C", "w¬R", "w¬W"},
}

func TestFigure6Matrix(t *testing.T) {
	m := Figure6()
	for i := range AllAuths {
		for j := range AllAuths {
			want := figure6Expected[i][j]
			got := m[i][j].String()
			if want == "C" {
				want = "Conflict"
			}
			if got != want {
				t.Errorf("Figure 6 [%s, %s] = %q, want %q", AllAuths[i], AllAuths[j], got, want)
			}
		}
	}
}

func TestFigure6Symmetric(t *testing.T) {
	m := Figure6()
	for i := range AllAuths {
		for j := range AllAuths {
			if m[i][j].Conflict != m[j][i].Conflict || m[i][j].String() != m[j][i].String() {
				t.Errorf("Figure 6 asymmetric at [%s,%s]", AllAuths[i], AllAuths[j])
			}
		}
	}
}

// figure45Engine builds the object graph of the paper's Figures 4 and 5:
//
//	Figure 4: Instance[i] -> k, m; m -> n; n -> o   (one composite object)
//	Figure 5: Instance[j] and Instance[k] share Instance[o'];
//	          j -> p, k -> o, q as private components.
type figEngine struct {
	e                 *core.Engine
	st                *Store
	i, k4, m4, n4, o4 uid.UID
	j, k, op, p, o, q uid.UID
}

func newFigEngine(t *testing.T) *figEngine {
	t.Helper()
	cat := schema.NewCatalog()
	if _, err := cat.DefineClass(schema.ClassDef{Name: "Node", Attributes: []schema.AttrSpec{
		schema.NewCompositeSetAttr("Parts", "Node").WithExclusive(false).WithDependent(false),
	}}); err != nil {
		t.Fatal(err)
	}
	e := core.NewEngine(cat)
	f := &figEngine{e: e, st: NewStore(e)}
	mk := func() uid.UID {
		o, err := e.New("Node", nil)
		if err != nil {
			t.Fatal(err)
		}
		return o.UID()
	}
	// Figure 4 chain.
	f.i, f.k4, f.m4, f.n4, f.o4 = mk(), mk(), mk(), mk(), mk()
	for _, pair := range [][2]uid.UID{{f.i, f.k4}, {f.i, f.m4}, {f.m4, f.n4}, {f.n4, f.o4}} {
		if err := e.Attach(pair[0], "Parts", pair[1]); err != nil {
			t.Fatal(err)
		}
	}
	// Figure 5 graph.
	f.j, f.k, f.op, f.p, f.o, f.q = mk(), mk(), mk(), mk(), mk(), mk()
	for _, pair := range [][2]uid.UID{{f.j, f.op}, {f.k, f.op}, {f.j, f.p}, {f.k, f.o}, {f.k, f.q}} {
		if err := e.Attach(pair[0], "Parts", pair[1]); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

func TestFigure4ImplicitAuth(t *testing.T) {
	// A Read grant on the composite object root implies Read on every
	// component (Figure 4).
	f := newFigEngine(t)
	if err := f.st.GrantObject("alice", f.i, SR); err != nil {
		t.Fatal(err)
	}
	for _, id := range []uid.UID{f.i, f.k4, f.m4, f.n4, f.o4} {
		ok, err := f.st.Check("alice", id, Read)
		if err != nil || !ok {
			t.Fatalf("alice cannot read %v: %v", id, err)
		}
		// Read does not imply Write.
		ok, _ = f.st.Check("alice", id, Write)
		if ok {
			t.Fatalf("alice can write %v from a Read grant", id)
		}
	}
	// No authorization on unrelated objects.
	if ok, _ := f.st.Check("alice", f.j, Read); ok {
		t.Fatal("grant leaked outside the composite object")
	}
	// Other subjects receive nothing.
	if ok, _ := f.st.Check("bob", f.o4, Read); ok {
		t.Fatal("grant leaked to another subject")
	}
}

func TestFigure5SharedComponentTwoGrants(t *testing.T) {
	// Instance[o'] is a component of both composite objects; grants on
	// both roots combine.
	f := newFigEngine(t)
	if err := f.st.GrantObject("alice", f.j, SR); err != nil {
		t.Fatal(err)
	}
	if err := f.st.GrantObject("alice", f.k, SW); err != nil {
		t.Fatal(err)
	}
	res, err := f.st.Effective("alice", f.op)
	if err != nil {
		t.Fatal(err)
	}
	// Per the paper: sR from j + sW from k = sW on o'.
	if res.Conflict || res.String() != "sW" {
		t.Fatalf("effective on o' = %v", res)
	}
	if ok, _ := f.st.Check("alice", f.op, Write); !ok {
		t.Fatal("alice cannot write o'")
	}
	// Private components receive only their own root's grant.
	if ok, _ := f.st.Check("alice", f.p, Write); ok {
		t.Fatal("write leaked to j's private component")
	}
	if ok, _ := f.st.Check("alice", f.p, Read); !ok {
		t.Fatal("read missing on j's private component")
	}
}

func TestGrantConflictRejected(t *testing.T) {
	// The paper's example: strong ¬R from Instance[j], then strong W on
	// Instance[k] must fail (they meet on o').
	f := newFigEngine(t)
	if err := f.st.GrantObject("alice", f.j, SNR); err != nil {
		t.Fatal(err)
	}
	err := f.st.GrantObject("alice", f.k, SW)
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("conflicting grant accepted: %v", err)
	}
	// The failed grant left no trace: k's private components have nothing.
	if ok, _ := f.st.Check("alice", f.o, Write); ok {
		t.Fatal("failed grant took effect")
	}
	// A compatible grant on k still works (weak W is overridden on o').
	if err := f.st.GrantObject("alice", f.k, WW); err != nil {
		t.Fatalf("weak grant rejected: %v", err)
	}
	res, _ := f.st.Effective("alice", f.op)
	if res.Conflict || res.String() != "s¬R" {
		t.Fatalf("effective on o' = %v", res)
	}
	// On k's private components the weak W stands.
	if ok, _ := f.st.Check("alice", f.o, Write); !ok {
		t.Fatal("weak W not effective on private component")
	}
}

func TestClassGrantImpliesInstancesAndComponents(t *testing.T) {
	// §6: "An authorization on a composite class C implies the same
	// authorization on all instances of C and on all objects which are
	// components of the instances of C" — here via the Vehicle example.
	cat := schema.NewCatalog()
	cat.DefineClass(schema.ClassDef{Name: "AutoBody"})
	cat.DefineClass(schema.ClassDef{Name: "AutoDrivetrain"})
	cat.DefineClass(schema.ClassDef{Name: "Vehicle", Attributes: []schema.AttrSpec{
		schema.NewCompositeAttr("Body", "AutoBody").WithDependent(false),
		schema.NewCompositeAttr("Drivetrain", "AutoDrivetrain").WithDependent(false),
	}})
	e := core.NewEngine(cat)
	st := NewStore(e)
	body, _ := e.New("AutoBody", nil)
	dt, _ := e.New("AutoDrivetrain", nil)
	veh, _ := e.New("Vehicle", map[string]value.Value{
		"Body":       value.Ref(body.UID()),
		"Drivetrain": value.Ref(dt.UID()),
	})
	// A free-standing body that is NOT a component of any vehicle.
	freeBody, _ := e.New("AutoBody", nil)

	if err := st.GrantClass("alice", "Vehicle", SR); err != nil {
		t.Fatal(err)
	}
	for _, id := range []uid.UID{veh.UID(), body.UID(), dt.UID()} {
		if ok, _ := st.Check("alice", id, Read); !ok {
			t.Fatalf("class grant did not reach %v", id)
		}
	}
	// "the authorization on Vehicle does not imply the same authorization
	// on all instances of Autobody ... since not all instances ... may be
	// components of Vehicle."
	if ok, _ := st.Check("alice", freeBody.UID(), Read); ok {
		t.Fatal("class grant leaked to a non-component AutoBody")
	}
}

func TestClassGrantConflictOnComponent(t *testing.T) {
	// "a new authorization issued on a component class may conflict with
	// an authorization on the class which is implied by a previously
	// granted authorization."
	cat := schema.NewCatalog()
	cat.DefineClass(schema.ClassDef{Name: "AutoBody"})
	cat.DefineClass(schema.ClassDef{Name: "Vehicle", Attributes: []schema.AttrSpec{
		schema.NewCompositeAttr("Body", "AutoBody").WithDependent(false),
	}})
	e := core.NewEngine(cat)
	st := NewStore(e)
	body, _ := e.New("AutoBody", nil)
	if _, err := e.New("Vehicle", map[string]value.Value{"Body": value.Ref(body.UID())}); err != nil {
		t.Fatal(err)
	}
	if err := st.GrantClass("alice", "Vehicle", SR); err != nil {
		t.Fatal(err)
	}
	// s¬R on the component class contradicts the implied sR on body.
	if err := st.GrantClass("alice", "AutoBody", SNR); !errors.Is(err, ErrConflict) {
		t.Fatalf("conflicting component-class grant accepted: %v", err)
	}
}

func TestRevoke(t *testing.T) {
	f := newFigEngine(t)
	if err := f.st.GrantObject("alice", f.i, SR); err != nil {
		t.Fatal(err)
	}
	f.st.RevokeObject("alice", f.i)
	if ok, _ := f.st.Check("alice", f.o4, Read); ok {
		t.Fatal("revoked grant still effective")
	}
	// After revocation, a previously conflicting grant becomes possible.
	if err := f.st.GrantObject("alice", f.j, SNR); err != nil {
		t.Fatal(err)
	}
	f.st.RevokeObject("alice", f.j)
	if err := f.st.GrantObject("alice", f.k, SW); err != nil {
		t.Fatalf("grant after revoke rejected: %v", err)
	}
	f.st.RevokeClass("alice", "Node") // no-op, must not panic
}

func TestCheckDeniesWithoutGrant(t *testing.T) {
	f := newFigEngine(t)
	ok, err := f.st.Check("nobody", f.i, Read)
	if err != nil || ok {
		t.Fatalf("Check without grants = %v, %v", ok, err)
	}
	if _, err := f.st.Check("nobody", uid.UID{Class: 99, Serial: 1}, Read); err == nil {
		t.Fatal("Check on ghost object succeeded")
	}
}

func TestSubjects(t *testing.T) {
	f := newFigEngine(t)
	f.st.GrantObject("bob", f.i, WR)
	f.st.GrantClass("alice", "Node", WR)
	got := f.st.Subjects()
	if len(got) != 2 || got[0] != "alice" || got[1] != "bob" {
		t.Fatalf("Subjects = %v", got)
	}
}

func TestFormatFigure6(t *testing.T) {
	out := FormatFigure6()
	if len(out) == 0 {
		t.Fatal("empty rendering")
	}
	for _, want := range []string{"sR", "Conflict", "s¬R"} {
		if !contains(out, want) {
			t.Fatalf("rendering missing %q:\n%s", want, out)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestCombineOrderIndependent(t *testing.T) {
	// Resolution must not depend on the order grants are considered in.
	triples := [][]Auth{
		{SR, WR, WNR},
		{WNR, WR, SR},
		{SW, WNW, WW},
		{WNW, SW, WW},
		{SNR, WW, WR},
		{WR, WW, SNR},
	}
	for i := 0; i+1 < len(triples); i += 2 {
		a := Combine(triples[i]...)
		b := Combine(triples[i+1]...)
		if a.Conflict != b.Conflict || a.String() != b.String() {
			t.Errorf("order dependence: %v vs %v -> %q vs %q", triples[i], triples[i+1], a, b)
		}
	}
	// A strong authorization resolves what would be a weak-weak conflict.
	if res := Combine(WR, WNR, SR); res.Conflict {
		t.Errorf("strong did not resolve weak-weak opposition: %v", res)
	}
}
