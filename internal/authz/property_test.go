package authz

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randAuth(r *rand.Rand) Auth { return AllAuths[r.Intn(len(AllAuths))] }

func TestPropertyCombineCommutative(t *testing.T) {
	f := func(i, j uint8) bool {
		a := AllAuths[int(i)%len(AllAuths)]
		b := AllAuths[int(j)%len(AllAuths)]
		x, y := Combine(a, b), Combine(b, a)
		return x.Conflict == y.Conflict && x.String() == y.String()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCombineIdempotent(t *testing.T) {
	for _, a := range AllAuths {
		once := Combine(a)
		twice := Combine(a, a)
		if once.Conflict != twice.Conflict || once.String() != twice.String() {
			t.Errorf("Combine(%s) != Combine(%s,%s): %q vs %q", a, a, a, once, twice)
		}
		// A single authorization never conflicts with itself.
		if once.Conflict {
			t.Errorf("Combine(%s) conflicts", a)
		}
	}
}

func TestPropertyCombinePermutationInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		n := r.Intn(5) + 1
		auths := make([]Auth, n)
		for i := range auths {
			auths[i] = randAuth(r)
		}
		base := Combine(auths...)
		perm := make([]Auth, n)
		copy(perm, auths)
		r.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		got := Combine(perm...)
		if got.Conflict != base.Conflict || got.String() != base.String() {
			t.Fatalf("order dependence: %v -> %q, %v -> %q", auths, base, perm, got)
		}
	}
}

func TestPropertyStrongAlwaysSurvives(t *testing.T) {
	// Whatever weak authorizations are mixed in, a lone strong
	// authorization's effect on its own right is preserved (strong cannot
	// be overridden).
	r := rand.New(rand.NewSource(12))
	weaks := []Auth{WR, WW, WNR, WNW}
	for trial := 0; trial < 300; trial++ {
		strong := []Auth{SR, SW, SNR, SNW}[r.Intn(4)]
		var weakSet []Auth
		for i := 0; i < r.Intn(4); i++ {
			weakSet = append(weakSet, weaks[r.Intn(len(weaks))])
		}
		// Weak authorizations may conflict among themselves on a right the
		// strong one does not cover; skip those mixes.
		if Combine(weakSet...).Conflict {
			continue
		}
		auths := append([]Auth{strong}, weakSet...)
		res := Combine(auths...)
		if res.Conflict {
			// Legitimate only if the weak set opposes the strong on a
			// right the strong does not dominate — never for same-right
			// opposition (strong overrides weak). Verify: conflicts can
			// only come from weak-vs-weak residue, which we excluded, so
			// this must be impossible.
			t.Fatalf("strong+conflict-free-weak mix conflicted: %v", auths)
		}
		// The strong generator (or something at least as strong implying
		// it) must appear in the closure of the generators.
		found := false
		for _, g := range res.Generators {
			for _, c := range g.closure() {
				if c.Right == strong.Right && c.Positive == strong.Positive && c.Strength == Strong {
					found = true
				}
			}
		}
		if !found {
			t.Fatalf("strong %s lost in %v -> %q", strong, auths, res)
		}
	}
}

func TestPropertyGeneratorsRoundTrip(t *testing.T) {
	// Combining a resolution's generators reproduces the resolution (the
	// minimal set is faithful).
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 500; trial++ {
		n := r.Intn(4) + 1
		auths := make([]Auth, n)
		for i := range auths {
			auths[i] = randAuth(r)
		}
		res := Combine(auths...)
		if res.Conflict {
			continue
		}
		again := Combine(res.Generators...)
		if again.Conflict || again.String() != res.String() {
			t.Fatalf("generators %v of %v re-combine to %q, want %q",
				res.Generators, auths, again, res)
		}
	}
}

func TestPropertyConflictMonotoneUnderWeakAdditions(t *testing.T) {
	// Adding a WEAK authorization never un-conflicts a conflicted set
	// (only a strong authorization can override the opposition). Note the
	// converse design property: a strong authorization CAN resolve a
	// weak-weak conflict — asserted in TestCombineOrderIndependent.
	r := rand.New(rand.NewSource(14))
	weaks := []Auth{WR, WW, WNR, WNW}
	for trial := 0; trial < 300; trial++ {
		n := r.Intn(4) + 2
		auths := make([]Auth, n)
		for i := range auths {
			auths[i] = randAuth(r)
		}
		if !Combine(auths...).Conflict {
			continue
		}
		extended := append(append([]Auth{}, auths...), weaks[r.Intn(len(weaks))])
		if !Combine(extended...).Conflict {
			t.Fatalf("conflict vanished under weak addition: %v vs %v", auths, extended)
		}
	}
}
