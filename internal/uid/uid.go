// Package uid defines object identifiers (UIDs) for the composite-object
// store. Following ORION, a UID is a pair of a class identifier and a
// serial number unique within the class; the pair is globally unique and
// never reused. UIDs are value types and are valid map keys.
package uid

import (
	"fmt"
	"sync/atomic"
)

// ClassID identifies a class in the schema catalog.
type ClassID uint32

// UID is a globally unique object identifier. The zero value is Nil.
type UID struct {
	// Class is the class the object was created in. It is part of the
	// identity so that the kernel can locate an object's class without a
	// directory lookup, as in ORION.
	Class ClassID
	// Serial is unique within the class and never reused.
	Serial uint64
}

// Nil is the zero UID, used to represent a null reference.
var Nil = UID{}

// IsNil reports whether u is the null reference.
func (u UID) IsNil() bool { return u == Nil }

// String renders a UID as "class:serial", or "nil" for the null reference.
func (u UID) String() string {
	if u.IsNil() {
		return "nil"
	}
	return fmt.Sprintf("%d:%d", u.Class, u.Serial)
}

// MarshalText encodes the UID as "class:serial" (or "nil"), making UIDs
// usable as JSON map keys in persisted metadata.
func (u UID) MarshalText() ([]byte, error) {
	return []byte(u.String()), nil
}

// UnmarshalText decodes the representation produced by MarshalText.
func (u *UID) UnmarshalText(b []byte) error {
	s := string(b)
	if s == "nil" {
		*u = Nil
		return nil
	}
	var c uint32
	var n uint64
	if _, err := fmt.Sscanf(s, "%d:%d", &c, &n); err != nil {
		return fmt.Errorf("uid: parse %q: %w", s, err)
	}
	*u = UID{Class: ClassID(c), Serial: n}
	return nil
}

// Less imposes a total order on UIDs (class-major), used to produce
// deterministic iteration orders in query results and figures.
func (u UID) Less(v UID) bool {
	if u.Class != v.Class {
		return u.Class < v.Class
	}
	return u.Serial < v.Serial
}

// Compare returns -1, 0, or +1 per the Less order.
func (u UID) Compare(v UID) int {
	switch {
	case u == v:
		return 0
	case u.Less(v):
		return -1
	default:
		return 1
	}
}

// Generator allocates fresh UIDs. It is safe for concurrent use.
type Generator struct {
	next atomic.Uint64
}

// NewGenerator returns a Generator whose first serial is 1 (serial 0 is
// reserved for Nil).
func NewGenerator() *Generator {
	return &Generator{}
}

// Next returns a fresh UID in class c.
func (g *Generator) Next(c ClassID) UID {
	return UID{Class: c, Serial: g.next.Add(1)}
}

// Seed advances the generator so that all subsequently issued serials are
// greater than n. It is used when reopening a database from disk.
func (g *Generator) Seed(n uint64) {
	for {
		cur := g.next.Load()
		if cur >= n {
			return
		}
		if g.next.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Current returns the highest serial issued so far.
func (g *Generator) Current() uint64 { return g.next.Load() }

// Set is an ordered collection of unique UIDs with O(1) membership.
// The zero value is an empty set ready to use for membership tests;
// call Add to populate.
type Set struct {
	order []UID
	index map[UID]int
}

// NewSet returns a Set containing the given UIDs (duplicates ignored).
func NewSet(us ...UID) *Set {
	s := &Set{}
	for _, u := range us {
		s.Add(u)
	}
	return s
}

// Add inserts u; it reports whether u was newly added.
func (s *Set) Add(u UID) bool {
	if s.index == nil {
		s.index = make(map[UID]int)
	}
	if _, ok := s.index[u]; ok {
		return false
	}
	s.index[u] = len(s.order)
	s.order = append(s.order, u)
	return true
}

// Remove deletes u in O(1) by swapping the last element into its slot;
// after a Remove, Slice order is no longer insertion order. Mass
// deletions (the Deletion Rule cascading over large extents) rely on this
// being constant time.
func (s *Set) Remove(u UID) bool {
	if s.index == nil {
		return false
	}
	i, ok := s.index[u]
	if !ok {
		return false
	}
	delete(s.index, u)
	last := len(s.order) - 1
	if i != last {
		s.order[i] = s.order[last]
		s.index[s.order[i]] = i
	}
	s.order = s.order[:last]
	return true
}

// Contains reports whether u is in the set.
func (s *Set) Contains(u UID) bool {
	if s == nil || s.index == nil {
		return false
	}
	_, ok := s.index[u]
	return ok
}

// Len returns the number of elements.
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	return len(s.order)
}

// Slice returns the elements in insertion order. The caller must not
// mutate the returned slice.
func (s *Set) Slice() []UID {
	if s == nil {
		return nil
	}
	return s.order
}
