package uid

import (
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestNilUID(t *testing.T) {
	if !Nil.IsNil() {
		t.Fatal("Nil.IsNil() = false")
	}
	if Nil.String() != "nil" {
		t.Fatalf("Nil.String() = %q, want nil", Nil.String())
	}
	u := UID{Class: 3, Serial: 7}
	if u.IsNil() {
		t.Fatal("non-zero UID reported nil")
	}
	if got, want := u.String(), "3:7"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestGeneratorUnique(t *testing.T) {
	g := NewGenerator()
	seen := make(map[UID]bool)
	for i := 0; i < 1000; i++ {
		u := g.Next(ClassID(i % 5))
		if seen[u] {
			t.Fatalf("duplicate UID %v", u)
		}
		if u.IsNil() {
			t.Fatal("generator produced Nil")
		}
		seen[u] = true
	}
}

func TestGeneratorConcurrent(t *testing.T) {
	g := NewGenerator()
	const workers, per = 8, 500
	out := make(chan UID, workers*per)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				out <- g.Next(1)
			}
		}()
	}
	wg.Wait()
	close(out)
	seen := make(map[UID]bool)
	for u := range out {
		if seen[u] {
			t.Fatalf("duplicate UID under concurrency: %v", u)
		}
		seen[u] = true
	}
	if len(seen) != workers*per {
		t.Fatalf("got %d unique UIDs, want %d", len(seen), workers*per)
	}
}

func TestGeneratorSeed(t *testing.T) {
	g := NewGenerator()
	g.Seed(100)
	u := g.Next(1)
	if u.Serial <= 100 {
		t.Fatalf("after Seed(100), Next serial = %d, want > 100", u.Serial)
	}
	// Seeding backwards is a no-op.
	g.Seed(5)
	v := g.Next(1)
	if v.Serial <= u.Serial {
		t.Fatalf("Seed moved generator backwards: %d then %d", u.Serial, v.Serial)
	}
}

func TestLessTotalOrder(t *testing.T) {
	f := func(a, b UID) bool {
		switch {
		case a == b:
			return !a.Less(b) && !b.Less(a) && a.Compare(b) == 0
		case a.Less(b):
			return !b.Less(a) && a.Compare(b) == -1 && b.Compare(a) == 1
		default:
			return b.Less(a) && a.Compare(b) == 1
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLessTransitive(t *testing.T) {
	f := func(a, b, c UID) bool {
		if a.Less(b) && b.Less(c) {
			return a.Less(c)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSetAddRemove(t *testing.T) {
	s := NewSet()
	a := UID{1, 1}
	b := UID{1, 2}
	c := UID{2, 1}
	if !s.Add(a) || !s.Add(b) || !s.Add(c) {
		t.Fatal("Add of fresh element returned false")
	}
	if s.Add(a) {
		t.Fatal("Add of duplicate returned true")
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if !s.Contains(b) {
		t.Fatal("Contains(b) = false")
	}
	if !s.Remove(b) {
		t.Fatal("Remove(b) = false")
	}
	if s.Contains(b) {
		t.Fatal("Contains(b) after Remove = true")
	}
	if s.Remove(b) {
		t.Fatal("second Remove(b) = true")
	}
	got := s.Slice()
	want := []UID{a, c}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Slice = %v, want %v", got, want)
	}
}

func TestSetPreservesInsertionOrder(t *testing.T) {
	s := NewSet()
	var ins []UID
	for i := 10; i > 0; i-- {
		u := UID{1, uint64(i)}
		ins = append(ins, u)
		s.Add(u)
	}
	got := s.Slice()
	for i := range ins {
		if got[i] != ins[i] {
			t.Fatalf("order broken at %d: got %v want %v", i, got[i], ins[i])
		}
	}
	// Remove is swap-remove (O(1)): order is no longer guaranteed, but
	// membership and the index must stay consistent.
	s.Remove(ins[4])
	if s.Len() != 9 || s.Contains(ins[4]) {
		t.Fatal("Remove broke membership")
	}
	for i, u := range ins {
		if i == 4 {
			continue
		}
		if !s.Contains(u) {
			t.Fatalf("lost element %v after Remove", u)
		}
	}
	// Every slice element must be findable through Contains (index sync).
	for _, u := range s.Slice() {
		if !s.Contains(u) {
			t.Fatalf("slice element %v not in index", u)
		}
	}
}

func TestSetRemoveIsConstantTimeShape(t *testing.T) {
	// Removing all n elements must be ~O(n) total, not O(n²): verified
	// structurally — after removing the first half in insertion order,
	// the set holds exactly the other half.
	s := NewSet()
	const n = 1000
	for i := 0; i < n; i++ {
		s.Add(UID{1, uint64(i + 1)})
	}
	for i := 0; i < n/2; i++ {
		if !s.Remove(UID{1, uint64(i + 1)}) {
			t.Fatalf("Remove(%d) = false", i+1)
		}
	}
	if s.Len() != n/2 {
		t.Fatalf("Len = %d", s.Len())
	}
	for i := n / 2; i < n; i++ {
		if !s.Contains(UID{1, uint64(i + 1)}) {
			t.Fatalf("lost %d", i+1)
		}
	}
}

func TestSetZeroValue(t *testing.T) {
	var s Set
	if s.Contains(UID{1, 1}) {
		t.Fatal("zero Set contains element")
	}
	if s.Len() != 0 {
		t.Fatal("zero Set Len != 0")
	}
	s.Add(UID{1, 1})
	if !s.Contains(UID{1, 1}) {
		t.Fatal("Add on zero Set failed")
	}
}

func TestNilSetAccessors(t *testing.T) {
	var s *Set
	if s.Contains(UID{1, 1}) {
		t.Fatal("nil Set contains element")
	}
	if s.Len() != 0 {
		t.Fatal("nil Set Len != 0")
	}
	if s.Slice() != nil {
		t.Fatal("nil Set Slice != nil")
	}
}

func TestSetPropertyMirrorsMap(t *testing.T) {
	// Property: a Set behaves like a map[UID]bool under a random sequence
	// of adds and removes.
	f := func(ops []struct {
		U   UID
		Del bool
	}) bool {
		s := NewSet()
		m := make(map[UID]bool)
		for _, op := range ops {
			if op.Del {
				delete(m, op.U)
				s.Remove(op.U)
			} else {
				m[op.U] = true
				s.Add(op.U)
			}
		}
		if s.Len() != len(m) {
			return false
		}
		for u := range m {
			if !s.Contains(u) {
				return false
			}
		}
		// Slice must contain exactly the members, no duplicates.
		sl := append([]UID{}, s.Slice()...)
		sort.Slice(sl, func(i, j int) bool { return sl[i].Less(sl[j]) })
		for i := 1; i < len(sl); i++ {
			if sl[i] == sl[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMarshalTextRoundTrip(t *testing.T) {
	for _, u := range []UID{Nil, {Class: 3, Serial: 7}, {Class: 4294967295, Serial: 18446744073709551615}} {
		b, err := u.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var got UID
		if err := got.UnmarshalText(b); err != nil {
			t.Fatal(err)
		}
		if got != u {
			t.Fatalf("round trip %v -> %v", u, got)
		}
	}
	var u UID
	if err := u.UnmarshalText([]byte("garbage")); err == nil {
		t.Fatal("garbage unmarshaled")
	}
}

func TestGeneratorCurrent(t *testing.T) {
	g := NewGenerator()
	if g.Current() != 0 {
		t.Fatalf("fresh Current = %d", g.Current())
	}
	g.Next(1)
	g.Next(1)
	if g.Current() != 2 {
		t.Fatalf("Current = %d", g.Current())
	}
}
