package version

import (
	"errors"
	"testing"

	"repro/internal/uid"
)

func TestWatchRequiresGeneric(t *testing.T) {
	_, m := cdEngine(t, true, false)
	_, v0, _ := m.CreateVersionable("D", nil)
	if err := m.Watch(v0); !errors.Is(err, ErrNotGeneric) {
		t.Fatalf("watch of a version instance: %v", err)
	}
	if err := m.Watch(uid.UID{Class: 9, Serial: 9}); !errors.Is(err, ErrNotGeneric) {
		t.Fatalf("watch of nothing: %v", err)
	}
}

func TestDeriveNotifications(t *testing.T) {
	_, m := cdEngine(t, true, false)
	g, v0, _ := m.CreateVersionable("D", nil)
	if err := m.Watch(g); err != nil {
		t.Fatal(err)
	}
	v1, _ := m.Derive(v0)
	evs := m.Notifications(g)
	// Unpinned: a derivation moves the system default too.
	if len(evs) != 2 {
		t.Fatalf("events = %v", evs)
	}
	if evs[0].Kind != EventDerived || evs[0].Version != v1 {
		t.Fatalf("first event = %+v", evs[0])
	}
	if evs[1].Kind != EventDefaultChanged || evs[1].Version != v1 {
		t.Fatalf("second event = %+v", evs[1])
	}
	if evs[0].Seq >= evs[1].Seq {
		t.Fatal("sequence not monotone")
	}
	// Drained.
	if len(m.Notifications(g)) != 0 {
		t.Fatal("queue not drained")
	}
}

func TestDeriveWhilePinnedNoDefaultEvent(t *testing.T) {
	_, m := cdEngine(t, true, false)
	g, v0, _ := m.CreateVersionable("D", nil)
	m.SetDefault(g, v0)
	m.Watch(g)
	if _, err := m.Derive(v0); err != nil {
		t.Fatal(err)
	}
	evs := m.Notifications(g)
	if len(evs) != 1 || evs[0].Kind != EventDerived {
		t.Fatalf("events = %v", evs)
	}
}

func TestSetDefaultNotification(t *testing.T) {
	_, m := cdEngine(t, true, false)
	g, v0, _ := m.CreateVersionable("D", nil)
	v1, _ := m.Derive(v0)
	m.Watch(g)
	m.SetDefault(g, v0)
	evs := m.Notifications(g)
	if len(evs) != 1 || evs[0].Kind != EventDefaultChanged || evs[0].Version != v0 {
		t.Fatalf("events = %v", evs)
	}
	// Unpin notifies too (the dynamic binding moves back to v1).
	m.SetDefault(g, uid.Nil)
	evs = m.Notifications(g)
	if len(evs) != 1 || evs[0].Kind != EventDefaultChanged {
		t.Fatalf("unpin events = %v", evs)
	}
	_ = v1
}

func TestDeleteVersionNotifications(t *testing.T) {
	_, m := cdEngine(t, true, false)
	g, v0, _ := m.CreateVersionable("D", nil)
	v1, _ := m.Derive(v0)
	m.Watch(g)
	// Deleting the newest (the system default): version-deleted +
	// default-changed back to v0.
	if err := m.DeleteVersion(v1); err != nil {
		t.Fatal(err)
	}
	evs := m.Notifications(g)
	if len(evs) != 2 {
		t.Fatalf("events = %v", evs)
	}
	if evs[0].Kind != EventVersionDeleted || evs[0].Version != v1 {
		t.Fatalf("first = %+v", evs[0])
	}
	if evs[1].Kind != EventDefaultChanged || evs[1].Version != v0 {
		t.Fatalf("second = %+v", evs[1])
	}
}

func TestDeleteLastVersionEmitsGenericDeleted(t *testing.T) {
	_, m := cdEngine(t, true, false)
	g, v0, _ := m.CreateVersionable("D", nil)
	m.Watch(g)
	if err := m.DeleteVersion(v0); err != nil {
		t.Fatal(err)
	}
	evs := m.Notifications(g)
	var kinds []EventKind
	for _, e := range evs {
		kinds = append(kinds, e.Kind)
	}
	if len(kinds) != 2 || kinds[0] != EventVersionDeleted || kinds[1] != EventGenericDeleted {
		t.Fatalf("kinds = %v", kinds)
	}
}

func TestUnwatchedGenericsAreSilent(t *testing.T) {
	_, m := cdEngine(t, true, false)
	g, v0, _ := m.CreateVersionable("D", nil)
	// Not watching: nothing queued.
	m.Derive(v0)
	if n := m.PendingNotifications(g); n != 0 {
		t.Fatalf("queued %d events without a watch", n)
	}
	// Watch, generate, unwatch: queue dropped.
	m.Watch(g)
	m.Derive(v0)
	if m.PendingNotifications(g) == 0 {
		t.Fatal("no events while watched")
	}
	m.Unwatch(g)
	if n := m.PendingNotifications(g); n != 0 {
		t.Fatalf("queue survived Unwatch: %d", n)
	}
}

func TestEventKindString(t *testing.T) {
	for k, want := range map[EventKind]string{
		EventDerived:        "derived",
		EventDefaultChanged: "default-changed",
		EventVersionDeleted: "version-deleted",
		EventGenericDeleted: "generic-deleted",
		EventKind(99):       "unknown",
	} {
		if k.String() != want {
			t.Errorf("String(%d) = %q", k, k.String())
		}
	}
}

func TestHookCleansBookkeepingOnDirectEngineDelete(t *testing.T) {
	e, m := cdEngine(t, true, false)
	e.SetHook(m) // version manager as the engine hook
	g, v0, _ := m.CreateVersionable("D", nil)
	v1, _ := m.Derive(v0)
	m.Watch(g)
	// Bypass DeleteVersion: delete the version straight through the engine.
	if _, err := e.Delete(v0); err != nil {
		t.Fatal(err)
	}
	if m.IsVersion(v0) {
		t.Fatal("bookkeeping survived direct engine delete")
	}
	info, _ := m.Info(g)
	if len(info.Versions) != 1 || info.Versions[0] != v1 {
		t.Fatalf("Versions = %v", info.Versions)
	}
	evs := m.Notifications(g)
	if len(evs) != 1 || evs[0].Kind != EventVersionDeleted || evs[0].Version != v0 {
		t.Fatalf("events = %v", evs)
	}
	// DeleteVersion through the manager still emits exactly once with the
	// hook installed (no duplicates).
	if err := m.DeleteVersion(v1); err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, ev := range m.Notifications(g) {
		if ev.Kind == EventVersionDeleted && ev.Version == v1 {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("VersionDeleted emitted %d times", count)
	}
}
