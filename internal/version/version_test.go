package version

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/schema"
	"repro/internal/uid"
	"repro/internal/value"
)

// cdEngine builds the §5.2 setting: versionable classes C and D, where C
// has a composite attribute A with domain D. The reference kind of A is
// configurable per test.
func cdEngine(t *testing.T, exclusive, dependent bool) (*core.Engine, *Manager) {
	t.Helper()
	cat := schema.NewCatalog()
	if _, err := cat.DefineClass(schema.ClassDef{Name: "D", Versionable: true, Attributes: []schema.AttrSpec{
		schema.NewAttr("Payload", schema.StringDomain),
	}}); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.DefineClass(schema.ClassDef{Name: "C", Versionable: true, Attributes: []schema.AttrSpec{
		schema.NewAttr("Name", schema.StringDomain),
		schema.NewCompositeAttr("A", "D").WithExclusive(exclusive).WithDependent(dependent),
	}}); err != nil {
		t.Fatal(err)
	}
	e := core.NewEngine(cat)
	return e, NewManager(e)
}

func TestCreateVersionable(t *testing.T) {
	_, m := cdEngine(t, true, false)
	g, v0, err := m.CreateVersionable("D", map[string]value.Value{"Payload": value.Str("p0")})
	if err != nil {
		t.Fatal(err)
	}
	if !m.IsGeneric(g) || m.IsGeneric(v0) {
		t.Fatal("IsGeneric wrong")
	}
	if !m.IsVersion(v0) || m.IsVersion(g) {
		t.Fatal("IsVersion wrong")
	}
	gv, err := m.GenericOf(v0)
	if err != nil || gv != g {
		t.Fatalf("GenericOf = %v, %v", gv, err)
	}
	info, err := m.Info(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Versions) != 1 || info.Versions[0] != v0 {
		t.Fatalf("Versions = %v", info.Versions)
	}
	if info.DerivedFrom[v0] != uid.Nil {
		t.Fatal("first version has a derivation parent")
	}
	// Attributes landed on the version instance.
	vo, _ := m.Engine().Get(v0)
	if s, _ := vo.Get("Payload").AsString(); s != "p0" {
		t.Fatalf("Payload = %v", vo.Get("Payload"))
	}
}

func TestCreateVersionableRequiresFlag(t *testing.T) {
	cat := schema.NewCatalog()
	cat.DefineClass(schema.ClassDef{Name: "Plain"})
	m := NewManager(core.NewEngine(cat))
	if _, _, err := m.CreateVersionable("Plain", nil); !errors.Is(err, ErrNotVersionable) {
		t.Fatalf("versionable of plain class: %v", err)
	}
	if _, _, err := m.CreateVersionable("Ghost", nil); !errors.Is(err, schema.ErrNoClass) {
		t.Fatalf("ghost class: %v", err)
	}
}

func TestDeriveBuildsHierarchy(t *testing.T) {
	_, m := cdEngine(t, true, false)
	g, v0, _ := m.CreateVersionable("D", map[string]value.Value{"Payload": value.Str("p0")})
	v1, err := m.Derive(v0)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := m.Derive(v0)
	if err != nil {
		t.Fatal(err)
	}
	v3, err := m.Derive(v1)
	if err != nil {
		t.Fatal(err)
	}
	info, _ := m.Info(g)
	if len(info.Versions) != 4 {
		t.Fatalf("Versions = %v", info.Versions)
	}
	if info.DerivedFrom[v1] != v0 || info.DerivedFrom[v2] != v0 || info.DerivedFrom[v3] != v1 {
		t.Fatalf("derivation hierarchy wrong: %v", info.DerivedFrom)
	}
	// Derived copies carry the source's attributes.
	vo, _ := m.Engine().Get(v3)
	if s, _ := vo.Get("Payload").AsString(); s != "p0" {
		t.Fatalf("derived Payload = %v", vo.Get("Payload"))
	}
	// Deriving from a non-version errors.
	if _, err := m.Derive(g); !errors.Is(err, ErrNotVersion) {
		t.Fatalf("derive from generic: %v", err)
	}
}

func TestDefaultVersionTimestampAndPin(t *testing.T) {
	_, m := cdEngine(t, true, false)
	g, v0, _ := m.CreateVersionable("D", nil)
	v1, _ := m.Derive(v0)
	// System default: newest by creation.
	d, err := m.DefaultVersion(g)
	if err != nil || d != v1 {
		t.Fatalf("default = %v, want %v", d, v1)
	}
	// User pin.
	if err := m.SetDefault(g, v0); err != nil {
		t.Fatal(err)
	}
	if d, _ := m.DefaultVersion(g); d != v0 {
		t.Fatalf("pinned default = %v", d)
	}
	// Resolve implements dynamic binding.
	if r, _ := m.Resolve(g); r != v0 {
		t.Fatalf("Resolve(generic) = %v", r)
	}
	if r, _ := m.Resolve(v1); r != v1 {
		t.Fatalf("Resolve(version) = %v", r)
	}
	// Clear the pin.
	if err := m.SetDefault(g, uid.Nil); err != nil {
		t.Fatal(err)
	}
	if d, _ := m.DefaultVersion(g); d != v1 {
		t.Fatalf("default after clear = %v", d)
	}
	// Pinning a foreign version fails.
	g2, _, _ := m.CreateVersionable("D", nil)
	if err := m.SetDefault(g2, v0); !errors.Is(err, ErrNotVersion) {
		t.Fatalf("foreign pin: %v", err)
	}
}

func TestFigure1IndependentExclusiveRewrite(t *testing.T) {
	// Figure 1: c-i holds an independent exclusive reference to version
	// instance d-k; deriving c-j rewrites the reference to the generic
	// instance g-d.
	_, m := cdEngine(t, true, false) // A independent exclusive
	gd, dk, _ := m.CreateVersionable("D", nil)
	_, ci, _ := m.CreateVersionable("C", nil)
	if err := m.Attach(ci, "A", dk); err != nil {
		t.Fatal(err)
	}
	cj, err := m.Derive(ci)
	if err != nil {
		t.Fatal(err)
	}
	cjObj, _ := m.Engine().Get(cj)
	r, ok := cjObj.Get("A").AsRef()
	if !ok || r != gd {
		t.Fatalf("derived A = %v, want generic %v", cjObj.Get("A"), gd)
	}
	// The original keeps its static reference.
	ciObj, _ := m.Engine().Get(ci)
	if r, _ := ciObj.Get("A").AsRef(); r != dk {
		t.Fatalf("source A = %v", ciObj.Get("A"))
	}
}

func TestFigure1DependentExclusiveNil(t *testing.T) {
	// Figure 1 variant: a dependent exclusive reference is set to Nil in
	// the new copy.
	_, m := cdEngine(t, true, true) // A dependent exclusive
	_, dk, _ := m.CreateVersionable("D", nil)
	_, ci, _ := m.CreateVersionable("C", nil)
	if err := m.Attach(ci, "A", dk); err != nil {
		t.Fatal(err)
	}
	cj, err := m.Derive(ci)
	if err != nil {
		t.Fatal(err)
	}
	cjObj, _ := m.Engine().Get(cj)
	if !cjObj.Get("A").IsNil() {
		t.Fatalf("derived dependent A = %v, want Nil", cjObj.Get("A"))
	}
}

func TestFigure1SharedCopiesAsIs(t *testing.T) {
	_, m := cdEngine(t, false, false) // A independent shared
	_, dk, _ := m.CreateVersionable("D", nil)
	_, ci, _ := m.CreateVersionable("C", nil)
	if err := m.Attach(ci, "A", dk); err != nil {
		t.Fatal(err)
	}
	cj, err := m.Derive(ci)
	if err != nil {
		t.Fatal(err)
	}
	cjObj, _ := m.Engine().Get(cj)
	if r, _ := cjObj.Get("A").AsRef(); r != dk {
		t.Fatalf("derived shared A = %v, want %v", cjObj.Get("A"), dk)
	}
	// d-k now has two shared reverse references (CV-2X allows it).
	dkObj, _ := m.Engine().Get(dk)
	if len(dkObj.IS()) != 2 {
		t.Fatalf("IS(d-k) = %v", dkObj.IS())
	}
}

func TestFigure2DifferentVersionsDifferentTargets(t *testing.T) {
	// Figure 2: version instances of g-c may reference different version
	// instances of g-d, each exclusively.
	_, m := cdEngine(t, true, false)
	_, dk, _ := m.CreateVersionable("D", nil)
	dj, err := m.Derive(dk)
	if err != nil {
		t.Fatal(err)
	}
	_, ci, _ := m.CreateVersionable("C", nil)
	cj, _ := m.Derive(ci)
	if err := m.Attach(ci, "A", dk); err != nil {
		t.Fatal(err)
	}
	if err := m.Attach(cj, "A", dj); err != nil {
		t.Fatal(err)
	}
	// But a second exclusive reference to the SAME version instance is
	// rejected (CV-2X sentence 1).
	ck, _ := m.Derive(ci) // derive rewrites to generic, so clear it first
	ckObj, _ := m.Engine().Get(ck)
	if !ckObj.Get("A").IsNil() {
		if err := m.Detach(ck, "A", mustRef(t, ckObj.Get("A"))); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Attach(ck, "A", dk); !errors.Is(err, core.ErrTopologyViolation) {
		t.Fatalf("second exclusive ref to version instance: %v", err)
	}
}

func mustRef(t *testing.T, v value.Value) uid.UID {
	t.Helper()
	r, ok := v.AsRef()
	if !ok {
		t.Fatalf("not a ref: %v", v)
	}
	return r
}

func TestCV2XGenericMultipleExclusiveSameHierarchy(t *testing.T) {
	// CV-2X sentence 2: a generic instance may have several exclusive
	// references, but only from the same version-derivation hierarchy.
	_, m := cdEngine(t, true, false)
	gd, _, _ := m.CreateVersionable("D", nil)
	_, ci, _ := m.CreateVersionable("C", nil)
	cj, _ := m.Derive(ci)

	if err := m.Attach(ci, "A", gd); err != nil {
		t.Fatal(err)
	}
	// Same hierarchy (cj derived from ci): allowed.
	cjObj, _ := m.Engine().Get(cj)
	if r, ok := cjObj.Get("A").AsRef(); ok {
		m.Detach(cj, "A", r)
	}
	if err := m.Attach(cj, "A", gd); err != nil {
		t.Fatalf("same-hierarchy exclusive ref to generic rejected: %v", err)
	}
	// Different hierarchy: rejected.
	_, cx, _ := m.CreateVersionable("C", nil)
	if err := m.Attach(cx, "A", gd); !errors.Is(err, ErrCV2X) {
		t.Fatalf("cross-hierarchy exclusive ref to generic: %v", err)
	}
}

func TestFigure3RefCounts(t *testing.T) {
	// Figure 3.b: versions a1.v0 and a1.v1 (of generic a1) reference
	// versions b1.v0 and b1.v1 (of generic b1). The reverse composite
	// generic reference from b1 to a1 carries ref-count 2; removing the
	// version-level references decrements it, and the entry disappears at
	// zero.
	_, m := cdEngine(t, true, false)
	b1, b1v0, _ := m.CreateVersionable("D", nil)
	b1v1, _ := m.Derive(b1v0)
	a1, a1v0, _ := m.CreateVersionable("C", nil)
	a1v1, _ := m.Derive(a1v0)

	if err := m.Attach(a1v0, "A", b1v0); err != nil {
		t.Fatal(err)
	}
	if err := m.Attach(a1v1, "A", b1v1); err != nil {
		t.Fatal(err)
	}
	// Generic b1 carries one generic-level entry keyed by generic a1 with
	// ref-count 2.
	b1Obj, _ := m.Engine().Get(b1)
	i := b1Obj.FindReverse(a1)
	if i < 0 {
		t.Fatalf("no reverse composite generic reference in b1: %v", b1Obj.Reverse())
	}
	if got := b1Obj.Reverse()[i].Count; got != 2 {
		t.Fatalf("ref-count = %d, want 2", got)
	}
	// parents-of on the generic b1 answers a1 even though all version
	// references are statically bound (the paper's closing observation on
	// Figure 3.b).
	parents, err := m.Engine().ParentsOf(b1, core.QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(parents) != 1 || parents[0] != a1 {
		t.Fatalf("parents-of(b1) = %v, want [a1]", parents)
	}
	// Remove a1.v0 -> b1.v0: count drops to 1, entry survives.
	if err := m.Detach(a1v0, "A", b1v0); err != nil {
		t.Fatal(err)
	}
	b1Obj, _ = m.Engine().Get(b1)
	i = b1Obj.FindReverse(a1)
	if i < 0 || b1Obj.Reverse()[i].Count != 1 {
		t.Fatalf("after first removal: %v", b1Obj.Reverse())
	}
	// Remove a1.v1 -> b1.v1: count hits zero, entry removed.
	if err := m.Detach(a1v1, "A", b1v1); err != nil {
		t.Fatal(err)
	}
	b1Obj, _ = m.Engine().Get(b1)
	if b1Obj.FindReverse(a1) >= 0 {
		t.Fatalf("generic entry survived zero ref-count: %v", b1Obj.Reverse())
	}
}

func TestDeleteVersionCascadesAndLastVersionDeletesGeneric(t *testing.T) {
	// CV-4X: deleting a version cascades through dependent static refs;
	// deleting the last version deletes the generic.
	_, m := cdEngine(t, true, true) // dependent exclusive
	gd, dv, _ := m.CreateVersionable("D", nil)
	gc, cv, _ := m.CreateVersionable("C", nil)
	if err := m.Attach(cv, "A", dv); err != nil {
		t.Fatal(err)
	}
	// Deleting c's only version: d's version dies too (dependent), and
	// both generics die (their last versions are gone).
	if err := m.DeleteVersion(cv); err != nil {
		t.Fatal(err)
	}
	e := m.Engine()
	for _, id := range []uid.UID{cv, dv, gc, gd} {
		if e.Exists(id) {
			t.Fatalf("%v survived", id)
		}
	}
	if m.IsGeneric(gd) {
		t.Fatal("generic gd bookkeeping survived its last version")
	}
	if m.IsGeneric(gc) {
		t.Fatal("generic gc bookkeeping survived")
	}
	// d's generic should also be gone: its only version was cascade-
	// deleted.
	if m.IsVersion(dv) {
		t.Fatal("version bookkeeping for dv survived")
	}
}

func TestDeleteVersionKeepsGenericWhileVersionsRemain(t *testing.T) {
	_, m := cdEngine(t, true, false)
	g, v0, _ := m.CreateVersionable("D", nil)
	v1, _ := m.Derive(v0)
	if err := m.DeleteVersion(v0); err != nil {
		t.Fatal(err)
	}
	if !m.IsGeneric(g) || !m.IsVersion(v1) {
		t.Fatal("generic or surviving version lost")
	}
	info, _ := m.Info(g)
	if len(info.Versions) != 1 || info.Versions[0] != v1 {
		t.Fatalf("Versions = %v", info.Versions)
	}
	// Default falls to the survivor.
	if d, _ := m.DefaultVersion(g); d != v1 {
		t.Fatalf("default = %v", d)
	}
}

func TestDeleteGenericRecursesThroughDependentGenerics(t *testing.T) {
	// CV-4X: deleting g-c recursively deletes generics it references
	// exclusively and dependently (tracked via generic-level entries).
	_, m := cdEngine(t, true, true) // dependent exclusive
	gd, dv, _ := m.CreateVersionable("D", nil)
	gc, cv, _ := m.CreateVersionable("C", nil)
	if err := m.Attach(cv, "A", dv); err != nil {
		t.Fatal(err)
	}
	if err := m.DeleteGeneric(gc); err != nil {
		t.Fatal(err)
	}
	e := m.Engine()
	for _, id := range []uid.UID{gc, cv, gd, dv} {
		if e.Exists(id) {
			t.Fatalf("%v survived DeleteGeneric cascade", id)
		}
	}
}

func TestDynamicBindingReference(t *testing.T) {
	// An object may reference the generic (dynamic binding); resolution
	// returns the default version.
	_, m := cdEngine(t, true, false)
	gd, v0, _ := m.CreateVersionable("D", map[string]value.Value{"Payload": value.Str("zero")})
	_, ci, _ := m.CreateVersionable("C", nil)
	if err := m.Attach(ci, "A", gd); err != nil {
		t.Fatal(err)
	}
	ciObj, _ := m.Engine().Get(ci)
	bound, _ := ciObj.Get("A").AsRef()
	resolved, err := m.Resolve(bound)
	if err != nil || resolved != v0 {
		t.Fatalf("resolved = %v, %v", resolved, err)
	}
	// Deriving a new version moves the dynamic binding automatically.
	v1, _ := m.Derive(v0)
	resolved, _ = m.Resolve(bound)
	if resolved != v1 {
		t.Fatalf("resolved after derive = %v, want %v", resolved, v1)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	e, m := cdEngine(t, true, false)
	g, v0, _ := m.CreateVersionable("D", nil)
	v1, _ := m.Derive(v0)
	m.SetDefault(g, v0)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2 := NewManager(e)
	if err := m2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if !m2.IsGeneric(g) || !m2.IsVersion(v0) || !m2.IsVersion(v1) {
		t.Fatal("bookkeeping lost in round trip")
	}
	if d, _ := m2.DefaultVersion(g); d != v0 {
		t.Fatalf("default lost: %v", d)
	}
	info, _ := m2.Info(g)
	if info.DerivedFrom[v1] != v0 {
		t.Fatal("derivation hierarchy lost")
	}
}
