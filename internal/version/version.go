// Package version implements §5 of the paper: versions of composite
// objects.
//
// A class declared versionable yields *versionable objects*: a generic
// instance plus a hierarchy of version instances derived from one another
// (the version-derivation hierarchy, whose history the generic instance
// keeps). References to a versionable object are either static (to a
// specific version instance) or dynamic (to the generic instance, resolved
// to the default version at access time).
//
// The rules of §5.2 as implemented here:
//
//	CV-1X: a composite reference from generic g-c to generic g-d means any
//	       number of version instances of g-c may hold that reference.
//	CV-2X: a version instance tolerates at most one exclusive composite
//	       reference (or any number of shared ones); a generic instance may
//	       hold several exclusive composite references only if all come
//	       from the same version-derivation hierarchy.
//	CV-3X: a composite reference between version instances implies one
//	       between their generic instances — materialized as the reverse
//	       composite generic references with ref-counts (§5.3, Figure 3).
//	CV-4X: deleting a generic instance deletes all its version instances
//	       and recursively the generic instances it references exclusively
//	       and dependently; deleting the last version instance deletes the
//	       generic instance.
//
// Derivation (Figure 1): when a version instance is copied, an exclusive
// composite reference to a *version instance* is rewritten to that
// instance's generic instance if independent, and to Nil if dependent;
// shared references and references to generic instances are copied as-is.
// An exclusive reference to a non-versionable object is set to Nil (the
// copy cannot be a second exclusive parent, and there is no generic
// instance to rebind to).
package version

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/object"
	"repro/internal/schema"
	"repro/internal/uid"
	"repro/internal/value"
)

// Sentinel errors.
var (
	ErrNotVersionable = errors.New("version: class is not versionable")
	ErrNotVersion     = errors.New("version: object is not a version instance")
	ErrNotGeneric     = errors.New("version: object is not a generic instance")
	ErrCV2X           = errors.New("version: rule CV-2X violation")
)

// Generic records the bookkeeping of one versionable object.
type Generic struct {
	UID         uid.UID
	Versions    []uid.UID           // creation order
	DerivedFrom map[uid.UID]uid.UID // version -> parent version (uid.Nil for the first)
	HasDefault  bool
	Default     uid.UID
	Stamp       map[uid.UID]uint64 // logical creation timestamps
}

// Manager maintains versionable objects over a core engine. All version
// and generic instances are ordinary engine objects of the versionable
// class; the manager adds the derivation bookkeeping and the reverse
// composite generic references of §5.3.
type Manager struct {
	mu        sync.Mutex
	e         *core.Engine
	generics  map[uid.UID]*Generic
	versionOf map[uid.UID]uid.UID
	clock     uint64
	notify    *notifier
}

// NewManager returns a version manager over the engine.
func NewManager(e *core.Engine) *Manager {
	return &Manager{
		e:         e,
		generics:  make(map[uid.UID]*Generic),
		versionOf: make(map[uid.UID]uid.UID),
		notify:    newNotifier(),
	}
}

// Engine returns the underlying engine.
func (m *Manager) Engine() *core.Engine { return m.e }

// IsGeneric reports whether id is a generic instance.
func (m *Manager) IsGeneric(id uid.UID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.generics[id]
	return ok
}

// IsVersion reports whether id is a version instance.
func (m *Manager) IsVersion(id uid.UID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.versionOf[id]
	return ok
}

// GenericOf returns the generic instance of a version instance.
func (m *Manager) GenericOf(v uid.UID) (uid.UID, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	g, ok := m.versionOf[v]
	if !ok {
		return uid.Nil, fmt.Errorf("%v: %w", v, ErrNotVersion)
	}
	return g, nil
}

// Info returns a copy of the generic bookkeeping for g.
func (m *Manager) Info(g uid.UID) (Generic, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	gen, ok := m.generics[g]
	if !ok {
		return Generic{}, fmt.Errorf("%v: %w", g, ErrNotGeneric)
	}
	out := *gen
	out.Versions = append([]uid.UID(nil), gen.Versions...)
	out.DerivedFrom = make(map[uid.UID]uid.UID, len(gen.DerivedFrom))
	for k, v := range gen.DerivedFrom {
		out.DerivedFrom[k] = v
	}
	out.Stamp = make(map[uid.UID]uint64, len(gen.Stamp))
	for k, v := range gen.Stamp {
		out.Stamp[k] = v
	}
	return out, nil
}

// CreateVersionable creates a versionable object of the (versionable)
// class: a generic instance plus the first version instance carrying
// attrs. It returns (generic, firstVersion).
func (m *Manager) CreateVersionable(class string, attrs map[string]value.Value) (uid.UID, uid.UID, error) {
	cl, err := m.e.Catalog().Class(class)
	if err != nil {
		return uid.Nil, uid.Nil, err
	}
	if !cl.Versionable {
		return uid.Nil, uid.Nil, fmt.Errorf("%q: %w", class, ErrNotVersionable)
	}
	gObj, err := m.e.New(class, nil)
	if err != nil {
		return uid.Nil, uid.Nil, err
	}
	m.mu.Lock()
	gen := &Generic{
		UID:         gObj.UID(),
		DerivedFrom: make(map[uid.UID]uid.UID),
		Stamp:       make(map[uid.UID]uint64),
	}
	m.generics[gObj.UID()] = gen
	m.mu.Unlock()

	v, err := m.newVersion(gen, attrs, uid.Nil)
	if err != nil {
		m.mu.Lock()
		delete(m.generics, gObj.UID())
		m.mu.Unlock()
		m.e.Evict(gObj.UID())
		return uid.Nil, uid.Nil, err
	}
	return gObj.UID(), v, nil
}

// newVersion creates a version instance under gen, wiring composite
// references through the version-aware attach path.
func (m *Manager) newVersion(gen *Generic, attrs map[string]value.Value, from uid.UID) (uid.UID, error) {
	cl, err := m.e.Catalog().ClassByID(gen.UID.Class)
	if err != nil {
		return uid.Nil, err
	}
	// Split attrs: plain values go through New; references through
	// version-aware attach (which knows rule CV-2X and the generic
	// bookkeeping).
	specs, err := m.e.Catalog().Attributes(cl.Name)
	if err != nil {
		return uid.Nil, err
	}
	specOf := map[string]schema.AttrSpec{}
	for _, s := range specs {
		specOf[s.Name] = s
	}
	plain := map[string]value.Value{}
	type refAttach struct {
		attr   string
		target uid.UID
	}
	var refs []refAttach
	for name, v := range attrs {
		spec, ok := specOf[name]
		if ok && spec.Composite {
			for _, r := range v.Refs(nil) {
				refs = append(refs, refAttach{name, r})
			}
			continue
		}
		plain[name] = v
	}
	vObj, err := m.e.New(cl.Name, plain)
	if err != nil {
		return uid.Nil, err
	}
	m.mu.Lock()
	m.clock++
	gen.Versions = append(gen.Versions, vObj.UID())
	gen.DerivedFrom[vObj.UID()] = from
	gen.Stamp[vObj.UID()] = m.clock
	m.versionOf[vObj.UID()] = gen.UID
	m.mu.Unlock()

	emitOK := func() {
		m.notify.emit(EventDerived, gen.UID, vObj.UID())
		m.mu.Lock()
		pinned := gen.HasDefault
		m.mu.Unlock()
		if !pinned {
			// System default follows the newest version.
			m.notify.emit(EventDefaultChanged, gen.UID, vObj.UID())
		}
	}
	for _, r := range refs {
		if err := m.Attach(vObj.UID(), r.attr, r.target); err != nil {
			// Roll the half-created version back.
			m.mu.Lock()
			gen.Versions = gen.Versions[:len(gen.Versions)-1]
			delete(gen.DerivedFrom, vObj.UID())
			delete(gen.Stamp, vObj.UID())
			delete(m.versionOf, vObj.UID())
			m.mu.Unlock()
			m.e.Evict(vObj.UID())
			return uid.Nil, err
		}
	}
	emitOK()
	return vObj.UID(), nil
}

// Derive copies version instance from into a new version instance of the
// same generic, applying the Figure 1 reference rewrites.
func (m *Manager) Derive(from uid.UID) (uid.UID, error) {
	gID, err := m.GenericOf(from)
	if err != nil {
		return uid.Nil, err
	}
	m.mu.Lock()
	gen := m.generics[gID]
	m.mu.Unlock()
	src, err := m.e.Get(from)
	if err != nil {
		return uid.Nil, err
	}
	cl, err := m.e.Catalog().ClassByID(from.Class)
	if err != nil {
		return uid.Nil, err
	}
	attrs := map[string]value.Value{}
	for _, name := range src.AttrNames() {
		spec, err := m.e.Catalog().Attribute(cl.Name, name)
		if err != nil {
			continue
		}
		v := src.Get(name).Clone()
		if spec.Composite {
			v = m.rewriteForDerivation(v, spec)
		}
		if !v.IsNil() {
			attrs[name] = v
		}
	}
	return m.newVersion(gen, attrs, from)
}

// rewriteForDerivation applies the Figure 1 rules to one composite value.
func (m *Manager) rewriteForDerivation(v value.Value, spec schema.AttrSpec) value.Value {
	if !spec.Exclusive {
		return v // shared references copy as-is (CV-2X allows many)
	}
	for _, r := range v.Refs(nil) {
		if m.IsGeneric(r) {
			continue // reference to a generic instance stays (CV-1X)
		}
		if spec.Dependent {
			v = v.WithoutRef(r) // dependent exclusive -> Nil
			continue
		}
		if g, err := m.GenericOf(r); err == nil {
			v = v.ReplaceRef(r, g) // independent exclusive -> generic
		} else {
			v = v.WithoutRef(r) // exclusive ref to a non-versionable object
		}
	}
	return v
}

// Attach creates a composite (or weak) reference from parent.attr to
// child with version-aware validation (rule CV-2X) and the §5.3 reverse
// composite generic reference bookkeeping.
func (m *Manager) Attach(parent uid.UID, attr string, child uid.UID) error {
	pcl, err := m.e.ClassOf(parent)
	if err != nil {
		return err
	}
	spec, err := m.e.Catalog().Attribute(pcl.Name, attr)
	if err != nil {
		return err
	}
	check := func(childObj *object.Object, s schema.AttrSpec) error {
		return m.cv2xCheck(parent, childObj, s)
	}
	if err := m.e.AttachWithCheck(parent, attr, child, check); err != nil {
		return err
	}
	if spec.Composite {
		m.noteRefAdded(parent, child, spec)
	}
	return nil
}

// Detach removes the reference and decrements the generic-level
// ref-count, dropping the reverse composite generic reference when it
// reaches zero (Figure 3).
func (m *Manager) Detach(parent uid.UID, attr string, child uid.UID) error {
	pcl, err := m.e.ClassOf(parent)
	if err != nil {
		return err
	}
	spec, err := m.e.Catalog().Attribute(pcl.Name, attr)
	if err != nil {
		return err
	}
	if err := m.e.Detach(parent, attr, child); err != nil {
		return err
	}
	if spec.Composite {
		m.noteRefRemoved(parent, child)
	}
	return nil
}

// cv2xCheck enforces rule CV-2X: the standard Make-Component Rule for
// version instances and non-versionable objects, relaxed for generic
// instances so that multiple exclusive references are legal when all stem
// from version instances of one derivation hierarchy.
func (m *Manager) cv2xCheck(parent uid.UID, child *object.Object, spec schema.AttrSpec) error {
	if !m.IsGeneric(child.UID()) {
		// Standard rule (§2.2).
		if spec.Exclusive {
			if child.HasAnyReverse() {
				return fmt.Errorf("version: %v already has a composite parent: %w", child.UID(), core.ErrTopologyViolation)
			}
			return nil
		}
		if child.HasExclusiveReverse() {
			return fmt.Errorf("version: %v has an exclusive composite parent: %w", child.UID(), core.ErrTopologyViolation)
		}
		return nil
	}
	// Child is a generic instance.
	if !spec.Exclusive {
		if child.HasExclusiveReverse() {
			// A generic with exclusive references cannot also be shared.
			return fmt.Errorf("version: generic %v has exclusive references: %w", child.UID(), ErrCV2X)
		}
		return nil
	}
	// Exclusive reference to a generic: every existing exclusive reference
	// must come from a version instance of the same generic as parent.
	parentGen, err := m.GenericOf(parent)
	if err != nil {
		// Parent is not a version instance: only one exclusive ref allowed.
		if child.HasAnyReverse() {
			return fmt.Errorf("version: generic %v already referenced; exclusive reference from non-version %v: %w",
				child.UID(), parent, ErrCV2X)
		}
		return nil
	}
	for _, r := range child.Reverse() {
		if !r.Exclusive {
			return fmt.Errorf("version: generic %v has shared references: %w", child.UID(), ErrCV2X)
		}
		otherGen, err := m.GenericOf(r.Parent)
		if err != nil || otherGen != parentGen {
			// Generic-level entries are keyed by the parent's generic.
			if r.Parent == parentGen {
				continue
			}
			return fmt.Errorf("version: generic %v exclusively referenced from a different derivation hierarchy (%v): %w",
				child.UID(), r.Parent, ErrCV2X)
		}
	}
	return nil
}

// genericKey maps a referencing parent to the key its generic-level entry
// uses: the parent itself when non-versionable, its generic otherwise.
func (m *Manager) genericKey(parent uid.UID) uid.UID {
	m.mu.Lock()
	defer m.mu.Unlock()
	if g, ok := m.versionOf[parent]; ok {
		return g
	}
	return parent
}

// noteRefAdded maintains the reverse composite generic references (§5.3)
// after a composite reference parent -> child was created.
func (m *Manager) noteRefAdded(parent, child uid.UID, spec schema.AttrSpec) {
	gID := uid.Nil
	if g, err := m.GenericOf(child); err == nil {
		gID = g // static binding: entry goes in the version's generic
	} else if m.IsGeneric(child) {
		gID = child // dynamic binding: entry goes in the generic itself
	} else {
		return // child not versionable
	}
	key := m.genericKey(parent)
	if gID == child && key == parent {
		// Non-versionable parent referencing the generic directly: the
		// engine's own reverse reference in the generic already records it.
		return
	}
	_ = m.e.Mutate(gID, func(gObj *object.Object) {
		if i := gObj.FindReverse(key); i >= 0 && gObj.Reverse()[i].Count > 0 {
			r := gObj.Reverse()[i]
			r.Count++
			gObj.AddReverse(r)
			return
		}
		gObj.AddReverse(object.ReverseRef{
			Parent:    key,
			Dependent: spec.Dependent,
			Exclusive: spec.Exclusive,
			Count:     1,
		})
	})
}

// noteRefRemoved decrements the generic-level ref-count for the removed
// composite reference parent -> child, removing the entry at zero.
func (m *Manager) noteRefRemoved(parent, child uid.UID) {
	gID := uid.Nil
	if g, err := m.GenericOf(child); err == nil {
		gID = g
	} else if m.IsGeneric(child) {
		gID = child
	} else {
		return
	}
	key := m.genericKey(parent)
	if gID == child && key == parent {
		return
	}
	_ = m.e.Mutate(gID, func(gObj *object.Object) {
		if i := gObj.FindReverse(key); i >= 0 {
			r := gObj.Reverse()[i]
			if r.Count > 1 {
				r.Count--
				gObj.AddReverse(r)
			} else {
				gObj.RemoveReverse(key)
			}
		}
	})
}

// SetDefault pins the default version of g (dynamic references resolve to
// it). Passing uid.Nil clears the pin, reverting to the system default
// (the newest version by creation timestamp).
func (m *Manager) SetDefault(g, v uid.UID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	gen, ok := m.generics[g]
	if !ok {
		return fmt.Errorf("%v: %w", g, ErrNotGeneric)
	}
	if v.IsNil() {
		gen.HasDefault = false
		gen.Default = uid.Nil
		m.notify.emit(EventDefaultChanged, g, uid.Nil)
		return nil
	}
	if m.versionOf[v] != g {
		return fmt.Errorf("%v is not a version of %v: %w", v, g, ErrNotVersion)
	}
	gen.HasDefault = true
	gen.Default = v
	m.notify.emit(EventDefaultChanged, g, v)
	return nil
}

// DefaultVersion returns the default version instance of g: the
// user-specified default if set, otherwise the version with the newest
// creation timestamp (§5.1).
func (m *Manager) DefaultVersion(g uid.UID) (uid.UID, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	gen, ok := m.generics[g]
	if !ok {
		return uid.Nil, fmt.Errorf("%v: %w", g, ErrNotGeneric)
	}
	if gen.HasDefault {
		return gen.Default, nil
	}
	var best uid.UID
	var bestTS uint64
	for _, v := range gen.Versions {
		if ts := gen.Stamp[v]; ts >= bestTS {
			best, bestTS = v, ts
		}
	}
	if best.IsNil() {
		return uid.Nil, fmt.Errorf("%v has no versions: %w", g, ErrNotGeneric)
	}
	return best, nil
}

// Resolve implements dynamic binding: a generic instance resolves to its
// default version; anything else resolves to itself.
func (m *Manager) Resolve(id uid.UID) (uid.UID, error) {
	if m.IsGeneric(id) {
		return m.DefaultVersion(id)
	}
	return id, nil
}

// DeleteVersion deletes one version instance. Per CV-2X/CV-4X the engine
// cascade deletes version instances statically bound through dependent
// references; if the deleted instance was the last version, the generic
// instance is deleted too (recursively through its exclusive dependent
// generic references).
func (m *Manager) DeleteVersion(v uid.UID) error {
	gID, err := m.GenericOf(v)
	if err != nil {
		return err
	}
	oldDefault, _ := m.DefaultVersion(gID)
	// Decrement generic-level counts for the composite references v holds.
	if obj, err := m.e.Get(v); err == nil {
		cl, _ := m.e.Catalog().ClassByID(v.Class)
		if cl != nil {
			attrs, _ := m.e.Catalog().Attributes(cl.Name)
			for _, spec := range attrs {
				if !spec.Composite {
					continue
				}
				for _, child := range obj.Get(spec.Name).Refs(nil) {
					m.noteRefRemoved(v, child)
				}
			}
		}
	}
	deleted, err := m.e.Delete(v)
	if err != nil {
		return err
	}
	// The cascade may have removed versions of other generics too; every
	// generic whose last version died is deleted as well (CV-4X).
	m.mu.Lock()
	touched := map[uid.UID]bool{gID: true}
	for _, d := range deleted {
		if g, ok := m.versionOf[d]; ok {
			delete(m.versionOf, d)
			touched[g] = true
			if gen := m.generics[g]; gen != nil {
				gen.remove(d)
			}
			m.notify.emit(EventVersionDeleted, g, d)
		}
	}
	// Sweep every generic left without versions — the cascade may have
	// emptied generics beyond the touched set when the engine hook already
	// cleaned their bookkeeping.
	_ = touched
	var empty []uid.UID
	for g, gen := range m.generics {
		if len(gen.Versions) == 0 {
			empty = append(empty, g)
		}
	}
	m.mu.Unlock()
	sort.Slice(empty, func(i, j int) bool { return empty[i].Less(empty[j]) })
	for _, g := range empty {
		if err := m.DeleteGeneric(g); err != nil && !errors.Is(err, ErrNotGeneric) {
			return err
		}
	}
	// Dynamic bindings move when the (pinned or system) default version
	// was among the casualties.
	if m.IsGeneric(gID) {
		if nd, err := m.DefaultVersion(gID); err == nil && nd != oldDefault {
			m.notify.emit(EventDefaultChanged, gID, nd)
		}
	}
	return nil
}

func (g *Generic) remove(v uid.UID) {
	for i, x := range g.Versions {
		if x == v {
			g.Versions = append(g.Versions[:i], g.Versions[i+1:]...)
			break
		}
	}
	delete(g.DerivedFrom, v)
	delete(g.Stamp, v)
	if g.HasDefault && g.Default == v {
		g.HasDefault = false
		g.Default = uid.Nil
	}
}

// DeleteGeneric deletes the whole versionable object: all version
// instances, the generic instance, and recursively the generic instances
// it holds exclusive dependent references to (CV-4X). The reverse
// composite generic references identify those targets.
func (m *Manager) DeleteGeneric(g uid.UID) error {
	m.mu.Lock()
	gen, ok := m.generics[g]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("%v: %w", g, ErrNotGeneric)
	}
	m.mu.Unlock()
	m.notify.emit(EventGenericDeleted, g, uid.Nil)
	m.mu.Lock()
	versions := append([]uid.UID(nil), gen.Versions...)
	delete(m.generics, g)
	m.mu.Unlock()

	for _, v := range versions {
		m.mu.Lock()
		_, still := m.versionOf[v]
		m.mu.Unlock()
		if !still || !m.e.Exists(v) {
			continue
		}
		// Bypass the last-version bookkeeping: the generic is already gone.
		if deleted, err := m.e.Delete(v); err == nil {
			m.mu.Lock()
			for _, d := range deleted {
				delete(m.versionOf, d)
			}
			m.mu.Unlock()
		}
	}
	// Recursive generic deletion: find generics whose reverse composite
	// generic references name g with D and X flags.
	var cascade []uid.UID
	m.mu.Lock()
	others := make([]uid.UID, 0, len(m.generics))
	for id := range m.generics {
		others = append(others, id)
	}
	m.mu.Unlock()
	sort.Slice(others, func(i, j int) bool { return others[i].Less(others[j]) })
	for _, id := range others {
		var r object.ReverseRef
		var hit bool
		if err := m.e.Mutate(id, func(obj *object.Object) {
			if i := obj.FindReverse(g); i >= 0 {
				r = obj.Reverse()[i]
				hit = true
				obj.RemoveReverse(g)
			}
		}); err != nil {
			continue
		}
		if hit && r.Exclusive && r.Dependent {
			cascade = append(cascade, id)
		}
	}
	if m.e.Exists(g) {
		if _, err := m.e.Delete(g); err != nil {
			return err
		}
	}
	for _, id := range cascade {
		if err := m.DeleteGeneric(id); err != nil && !errors.Is(err, ErrNotGeneric) {
			return err
		}
	}
	return nil
}

// state is the serialized form of the manager's bookkeeping.
type state struct {
	Clock    uint64    `json:"clock"`
	Generics []Generic `json:"generics"`
}

// Save serializes the version bookkeeping (the objects themselves persist
// through the storage layer).
func (m *Manager) Save(w io.Writer) error {
	m.mu.Lock()
	st := state{Clock: m.clock}
	for _, g := range m.generics {
		cp := *g
		st.Generics = append(st.Generics, cp)
	}
	m.mu.Unlock()
	sort.Slice(st.Generics, func(i, j int) bool { return st.Generics[i].UID.Less(st.Generics[j].UID) })
	return json.NewEncoder(w).Encode(&st)
}

// Load restores bookkeeping saved by Save.
func (m *Manager) Load(r io.Reader) error {
	var st state
	if err := json.NewDecoder(r).Decode(&st); err != nil {
		return fmt.Errorf("version: load: %w", err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.clock = st.Clock
	m.generics = make(map[uid.UID]*Generic, len(st.Generics))
	m.versionOf = make(map[uid.UID]uid.UID)
	for i := range st.Generics {
		g := st.Generics[i]
		m.generics[g.UID] = &g
		for _, v := range g.Versions {
			m.versionOf[v] = g.UID
		}
	}
	return nil
}
