package version

import (
	"sync"

	"repro/internal/core"
	"repro/internal/object"
	"repro/internal/uid"
)

// Change notification, after [CHOU88] ("Versions and Change Notification
// in an Object-Oriented Database System"), which the paper builds its
// version model on. Objects dynamically bound to a generic instance see a
// different version when the default changes; notification lets an
// application react — ORION's motivating case is a design whose
// subcomponent was revised.
//
// This implements *flag-based (deferred) notification*: events are queued
// per generic instance and consumed by whoever polls, rather than
// delivered synchronously — the mode [CHOU88] recommends for design
// environments where the affected designer may not be active.

// EventKind enumerates version-notification events.
type EventKind uint8

// Event kinds.
const (
	// EventDerived: a new version instance was derived.
	EventDerived EventKind = iota
	// EventDefaultChanged: the default version changed (pin, unpin, or a
	// new derivation while unpinned, all of which move dynamic bindings).
	EventDefaultChanged
	// EventVersionDeleted: a version instance was deleted.
	EventVersionDeleted
	// EventGenericDeleted: the whole versionable object was deleted.
	EventGenericDeleted
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EventDerived:
		return "derived"
	case EventDefaultChanged:
		return "default-changed"
	case EventVersionDeleted:
		return "version-deleted"
	case EventGenericDeleted:
		return "generic-deleted"
	default:
		return "unknown"
	}
}

// Event is one recorded change to a versionable object.
type Event struct {
	Kind    EventKind
	Generic uid.UID
	Version uid.UID // the derived/deleted/new-default version (Nil when n/a)
	Seq     uint64  // global ordering
}

// notifier queues events per generic instance.
type notifier struct {
	mu     sync.Mutex
	seq    uint64
	queues map[uid.UID][]Event
	watch  map[uid.UID]bool
}

func newNotifier() *notifier {
	return &notifier{
		queues: make(map[uid.UID][]Event),
		watch:  make(map[uid.UID]bool),
	}
}

func (n *notifier) emit(kind EventKind, generic, version uid.UID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.watch[generic] {
		return
	}
	n.seq++
	n.queues[generic] = append(n.queues[generic], Event{
		Kind: kind, Generic: generic, Version: version, Seq: n.seq,
	})
}

// Watch enables notification for a generic instance. Events occurring
// while unwatched are not recorded (flag-based notification tracks only
// registered interest, as in [CHOU88]).
func (m *Manager) Watch(g uid.UID) error {
	if !m.IsGeneric(g) {
		return ErrNotGeneric
	}
	m.notify.mu.Lock()
	defer m.notify.mu.Unlock()
	m.notify.watch[g] = true
	return nil
}

// Unwatch disables notification and drops any queued events.
func (m *Manager) Unwatch(g uid.UID) {
	m.notify.mu.Lock()
	defer m.notify.mu.Unlock()
	delete(m.notify.watch, g)
	delete(m.notify.queues, g)
}

// Notifications drains and returns the queued events for g, oldest first.
func (m *Manager) Notifications(g uid.UID) []Event {
	m.notify.mu.Lock()
	defer m.notify.mu.Unlock()
	out := m.notify.queues[g]
	delete(m.notify.queues, g)
	return out
}

// PendingNotifications reports how many events are queued for g without
// draining them.
func (m *Manager) PendingNotifications(g uid.UID) int {
	m.notify.mu.Lock()
	defer m.notify.mu.Unlock()
	return len(m.notify.queues[g])
}

// The version manager also participates in the engine's write-through
// hook chain so that deletions performed directly through the engine
// (bypassing DeleteVersion/DeleteGeneric) at least keep the bookkeeping
// consistent: the deleted object stops being a version or generic
// instance. The CV-4X cascades (last version deletes the generic, generic
// deletion recurses) require going through DeleteVersion/DeleteGeneric,
// which the db facade's API does.

// OnWrite implements core.Hook (no-op: writes don't move version state).
func (m *Manager) OnWrite(_ core.TxnID, _ *object.Object, _ uid.UID) error { return nil }

// OnDelete implements core.Hook: drop bookkeeping for deleted version or
// generic instances. It must not call back into the engine (the engine
// latch is held during hook dispatch).
func (m *Manager) OnDelete(_ core.TxnID, id uid.UID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if g, ok := m.versionOf[id]; ok {
		delete(m.versionOf, id)
		if gen := m.generics[g]; gen != nil {
			gen.remove(id)
		}
		m.notify.emit(EventVersionDeleted, g, id)
		return nil
	}
	if _, ok := m.generics[id]; ok {
		delete(m.generics, id)
		m.notify.emit(EventGenericDeleted, id, uid.Nil)
	}
	return nil
}
