// Package checkout implements design transactions over composite objects
// — the long-duration-transaction gap the paper closes §7 with:
//
//	"Unfortunately, they [the composite locking protocols] may not be
//	suitable for long-duration transactions. For long-duration
//	transactions, it may be better to lock individual component objects
//	as needed. An appropriate locking protocol for long-duration
//	transactions is still a research issue."
//
// This package provides the mechanism ORION's CAD applications actually
// used: CHECKOUT a whole composite object into a private workspace under
// one long-held composite lock, edit the private copies without touching
// the shared database (and without holding short locks over think time),
// then CHECKIN the accumulated changes atomically through an ordinary
// short transaction — or Release to discard them.
//
// A write checkout holds the §7 composite write locks (IX root class, X
// root, IXO/IXOS component classes) for its whole duration, so concurrent
// short transactions and other checkouts on the same composite object are
// excluded exactly as the paper's protocol prescribes, while checkouts of
// different composite objects proceed in parallel.
package checkout

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/lock"
	"repro/internal/object"
	"repro/internal/txn"
	"repro/internal/uid"
	"repro/internal/value"
)

// Sentinel errors.
var (
	ErrNotCheckedOut = errors.New("checkout: object is not part of this checkout")
	ErrReadOnly      = errors.New("checkout: read-only checkout")
	ErrDone          = errors.New("checkout: already checked in or released")
	ErrStale         = errors.New("checkout: object changed underneath a read-only checkout")
)

// Manager creates checkouts. Checkouts coexist with ordinary short
// transactions from the same txn.Manager: they share its lock manager.
type Manager struct {
	tm   *txn.Manager
	mu   sync.Mutex
	next uint64
}

// NewManager returns a checkout manager sharing the transaction manager's
// locks.
func NewManager(tm *txn.Manager) *Manager {
	return &Manager{tm: tm}
}

// Checkout is a private workspace holding copies of one composite object.
type Checkout struct {
	m        *Manager
	lockTx   *txn.Txn // holds the long-duration locks
	root     uid.UID
	write    bool
	copies   map[uid.UID]*object.Object
	baseline map[uid.UID]*object.Object // pristine copies for diffing at checkin
	done     bool
}

// Checkout copies the composite object rooted at root into a workspace.
// With write=true the §7 composite write locks are held until Checkin or
// Release; with write=false only the read locks are taken to produce a
// consistent snapshot and are RELEASED immediately (optimistic read:
// Checkin of a read checkout is not possible, and staleness can be
// detected with Validate).
func (m *Manager) Checkout(root uid.UID, write bool) (*Checkout, error) {
	lt := m.tm.Begin()
	e := m.tm.Engine()
	proto := m.tm.Protocol()
	var err error
	if write {
		err = proto.LockCompositeWrite(lt.ID(), root)
	} else {
		err = proto.LockCompositeRead(lt.ID(), root)
	}
	if err != nil {
		lt.Abort()
		return nil, err
	}
	co := &Checkout{
		m:        m,
		lockTx:   lt,
		root:     root,
		write:    write,
		copies:   make(map[uid.UID]*object.Object),
		baseline: make(map[uid.UID]*object.Object),
	}
	ids, err := e.ComponentsOf(root, core.QueryOpts{})
	if err != nil {
		lt.Abort()
		return nil, err
	}
	for _, id := range append([]uid.UID{root}, ids...) {
		snap, err := e.Snapshot(id)
		if err != nil {
			lt.Abort()
			return nil, err
		}
		co.copies[id] = snap
		co.baseline[id] = snap.Clone()
	}
	if !write {
		// Snapshot taken consistently; drop the read locks.
		lt.Abort()
		co.lockTx = nil
	}
	return co, nil
}

// Root returns the checked-out composite object's root.
func (c *Checkout) Root() uid.UID { return c.root }

// Objects returns the UIDs in the workspace (root first, then BFS order
// of the components at checkout time).
func (c *Checkout) Objects() []uid.UID {
	out := make([]uid.UID, 0, len(c.copies))
	out = append(out, c.root)
	for id := range c.copies {
		if id != c.root {
			out = append(out, id)
		}
	}
	return out
}

// Get returns the workspace copy of id. The caller may read it freely;
// mutations must go through Set.
func (c *Checkout) Get(id uid.UID) (*object.Object, error) {
	if c.done {
		return nil, ErrDone
	}
	o, ok := c.copies[id]
	if !ok {
		return nil, fmt.Errorf("%v: %w", id, ErrNotCheckedOut)
	}
	return o, nil
}

// Set edits an attribute of a workspace copy. The domain is validated
// against the catalog immediately; composite bookkeeping (reverse
// references, topology rules) is applied by the engine at Checkin.
func (c *Checkout) Set(id uid.UID, attr string, v value.Value) error {
	if c.done {
		return ErrDone
	}
	if !c.write {
		return ErrReadOnly
	}
	o, ok := c.copies[id]
	if !ok {
		return fmt.Errorf("%v: %w", id, ErrNotCheckedOut)
	}
	e := c.m.tm.Engine()
	cl, err := e.ClassOf(id)
	if err != nil {
		return err
	}
	if err := e.Catalog().ValidateValue(cl.Name, attr, v); err != nil {
		return err
	}
	o.Set(attr, v)
	return nil
}

// Dirty returns the UIDs whose workspace copy differs from the baseline.
func (c *Checkout) Dirty() []uid.UID {
	var out []uid.UID
	for id, o := range c.copies {
		if !sameAttrs(o, c.baseline[id]) {
			out = append(out, id)
		}
	}
	return out
}

func sameAttrs(a, b *object.Object) bool {
	an, bn := a.AttrNames(), b.AttrNames()
	if len(an) != len(bn) {
		return false
	}
	for i, n := range an {
		if n != bn[i] || !a.Get(n).Equal(b.Get(n)) {
			return false
		}
	}
	return true
}

// Checkin applies the workspace edits to the database (per-attribute
// WriteAttr, so all composite semantics and topology rules run) through
// the checkout's own lock-holding transaction — a fresh transaction would
// deadlock against the checkout's long-held IXO locks — then commits,
// releasing the long-duration locks. On failure the applied edits are
// rolled back and the checkout ENDS (its locks are released with the
// abort); re-checkout to try again.
func (c *Checkout) Checkin() error {
	if c.done {
		return ErrDone
	}
	if !c.write {
		return ErrReadOnly
	}
	t := c.lockTx
	apply := func() error {
		for _, id := range c.Dirty() {
			cur := c.copies[id]
			base := c.baseline[id]
			// Apply changed/new attributes.
			for _, n := range cur.AttrNames() {
				if !cur.Get(n).Equal(base.Get(n)) {
					if err := t.WriteAttr(id, n, cur.Get(n)); err != nil {
						return err
					}
				}
			}
			// Clear removed attributes.
			for _, n := range base.AttrNames() {
				if !cur.Has(n) {
					if err := t.WriteAttr(id, n, value.Nil); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}
	if err := apply(); err != nil {
		c.done = true
		c.lockTx = nil
		t.Abort() // rolls the applied edits back and releases the locks
		return err
	}
	c.done = true
	c.lockTx = nil
	return t.Commit()
}

// Validate reports whether the database still matches the checkout's
// baseline (useful before acting on a read-only snapshot).
func (c *Checkout) Validate() error {
	if c.done {
		return ErrDone
	}
	e := c.m.tm.Engine()
	for id, base := range c.baseline {
		cur, err := e.Snapshot(id)
		if err != nil {
			return fmt.Errorf("%v: %w", id, ErrStale)
		}
		if !sameAttrs(cur, base) {
			return fmt.Errorf("%v: %w", id, ErrStale)
		}
	}
	return nil
}

// Release discards the workspace and the locks.
func (c *Checkout) Release() error {
	if c.done {
		return ErrDone
	}
	c.finish()
	return nil
}

func (c *Checkout) finish() {
	c.done = true
	if c.lockTx != nil {
		c.lockTx.Abort() // held no writes; Abort just releases the locks
		c.lockTx = nil
	}
	c.copies = nil
	c.baseline = nil
}

// HeldLocks reports whether the checkout still holds database locks (true
// only for live write checkouts).
func (c *Checkout) HeldLocks() bool { return !c.done && c.lockTx != nil }

// LockTx exposes the lock-holding transaction's ID for observation in
// tests and tools.
func (c *Checkout) LockTx() (lock.TxID, bool) {
	if c.lockTx == nil {
		return 0, false
	}
	return c.lockTx.ID(), true
}
