package checkout

import (
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/lock"
	"repro/internal/schema"
	"repro/internal/txn"
	"repro/internal/uid"
	"repro/internal/value"
)

// fixture builds an Assembly-of-Parts schema. Root and component classes
// are distinct, as in the paper's protocol examples: with a recursive
// hierarchy (Part containing Parts) a composite writer would hold both IX
// and IXO on the same class, and since IX×IXO conflict, concurrent
// composite writers on a recursive hierarchy serialize at the class.
func fixture(t *testing.T) (*txn.Manager, *Manager, uid.UID, []uid.UID) {
	t.Helper()
	cat := schema.NewCatalog()
	if _, err := cat.DefineClass(schema.ClassDef{Name: "Part", Attributes: []schema.AttrSpec{
		schema.NewAttr("Mass", schema.RealDomain),
	}}); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.DefineClass(schema.ClassDef{Name: "Assembly", Attributes: []schema.AttrSpec{
		schema.NewAttr("Name", schema.StringDomain),
		schema.NewCompositeSetAttr("Subparts", "Part"),
	}}); err != nil {
		t.Fatal(err)
	}
	e := core.NewEngine(cat)
	tm := txn.NewManager(e)
	root, err := e.New("Assembly", map[string]value.Value{"Name": value.Str("assembly")})
	if err != nil {
		t.Fatal(err)
	}
	var parts []uid.UID
	for i := 0; i < 3; i++ {
		p, err := e.New("Part", map[string]value.Value{"Mass": value.Real(1)},
			core.ParentSpec{Parent: root.UID(), Attr: "Subparts"})
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, p.UID())
	}
	return tm, NewManager(tm), root.UID(), parts
}

func TestCheckoutEditCheckin(t *testing.T) {
	tm, m, root, parts := fixture(t)
	co, err := m.Checkout(root, true)
	if err != nil {
		t.Fatal(err)
	}
	if co.Root() != root || len(co.Objects()) != 4 {
		t.Fatalf("workspace = %v", co.Objects())
	}
	// Edit in the workspace: not visible in the database yet.
	if err := co.Set(parts[0], "Mass", value.Real(2.5)); err != nil {
		t.Fatal(err)
	}
	if err := co.Set(root, "Name", value.Str("assembly-v2")); err != nil {
		t.Fatal(err)
	}
	dbObj, _ := tm.Engine().Get(parts[0])
	if f, _ := dbObj.Get("Mass").AsReal(); f != 1 {
		t.Fatal("workspace edit leaked before checkin")
	}
	if d := co.Dirty(); len(d) != 2 {
		t.Fatalf("Dirty = %v", d)
	}
	if err := co.Checkin(); err != nil {
		t.Fatal(err)
	}
	dbObj, _ = tm.Engine().Get(parts[0])
	if f, _ := dbObj.Get("Mass").AsReal(); f != 2.5 {
		t.Fatal("checkin did not apply the edit")
	}
	ro, _ := tm.Engine().Get(root)
	if s, _ := ro.Get("Name").AsString(); s != "assembly-v2" {
		t.Fatal("root edit lost")
	}
	// After checkin the checkout is done and locks are gone.
	if co.HeldLocks() {
		t.Fatal("locks survived checkin")
	}
	if err := co.Checkin(); !errors.Is(err, ErrDone) {
		t.Fatalf("double checkin: %v", err)
	}
}

func TestCheckoutHoldsCompositeLocks(t *testing.T) {
	tm, m, root, parts := fixture(t)
	co, err := m.Checkout(root, true)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Release()
	txID, ok := co.LockTx()
	if !ok {
		t.Fatal("write checkout without locks")
	}
	if !tm.Locks().Holds(txID, lock.InstanceGranule(root), lock.X) {
		t.Fatal("X on root missing")
	}
	if !tm.Locks().Holds(txID, lock.ClassGranule("Part"), lock.IXO) {
		t.Fatal("IXO on component class missing")
	}
	// A short transaction touching a component blocks until release.
	done := make(chan error, 1)
	go func() {
		done <- tm.Run(func(tx *txn.Txn) error {
			return tx.WriteAttr(parts[0], "Mass", value.Real(9))
		})
	}()
	select {
	case err := <-done:
		t.Fatalf("short txn proceeded against a write checkout: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	co.Release()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("short txn stuck after release")
	}
}

func TestParallelCheckoutsOfDifferentComposites(t *testing.T) {
	tm, m, root1, _ := fixture(t)
	root2Obj, _ := tm.Engine().New("Assembly", nil)
	root2 := root2Obj.UID()
	co1, err := m.Checkout(root1, true)
	if err != nil {
		t.Fatal(err)
	}
	defer co1.Release()
	// A second write checkout of a DIFFERENT composite object must be
	// granted immediately (ISO/IXO compatibility; root X locks differ).
	co2, err := m.Checkout(root2, true)
	if err != nil {
		t.Fatalf("parallel checkout blocked: %v", err)
	}
	co2.Release()
	// But a second checkout of the SAME composite object would block:
	// verify via TryLock on the root.
	if ok := tm.Locks().TryLock(9999, lock.InstanceGranule(root1), lock.X); ok {
		t.Fatal("root X granted while checked out")
	}
}

func TestReadCheckoutSnapshotAndValidate(t *testing.T) {
	tm, m, root, parts := fixture(t)
	co, err := m.Checkout(root, false)
	if err != nil {
		t.Fatal(err)
	}
	if co.HeldLocks() {
		t.Fatal("read checkout retained locks")
	}
	// Snapshot readable; edits rejected.
	o, err := co.Get(parts[0])
	if err != nil {
		t.Fatal(err)
	}
	if f, _ := o.Get("Mass").AsReal(); f != 1 {
		t.Fatalf("snapshot Mass = %v", o.Get("Mass"))
	}
	if err := co.Set(parts[0], "Mass", value.Real(3)); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("edit on read checkout: %v", err)
	}
	if err := co.Checkin(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("checkin of read checkout: %v", err)
	}
	// Validate passes while the database is unchanged...
	if err := co.Validate(); err != nil {
		t.Fatal(err)
	}
	// ...and detects staleness after a concurrent write.
	if err := tm.Engine().Set(parts[0], "Mass", value.Real(7)); err != nil {
		t.Fatal(err)
	}
	if err := co.Validate(); !errors.Is(err, ErrStale) {
		t.Fatalf("Validate after external write: %v", err)
	}
	co.Release()
}

func TestCheckinValidatesDomains(t *testing.T) {
	_, m, root, parts := fixture(t)
	co, err := m.Checkout(root, true)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Release()
	// Bad domain rejected immediately at Set.
	if err := co.Set(parts[0], "Mass", value.Str("heavy")); !errors.Is(err, schema.ErrDomainMismatch) {
		t.Fatalf("bad domain: %v", err)
	}
	if err := co.Set(parts[0], "Ghost", value.Int(1)); !errors.Is(err, schema.ErrNoAttr) {
		t.Fatalf("ghost attr: %v", err)
	}
	if err := co.Set(uid.UID{Class: 9, Serial: 9}, "Mass", value.Real(1)); !errors.Is(err, ErrNotCheckedOut) {
		t.Fatalf("foreign object: %v", err)
	}
}

func TestCheckinAppliesCompositeSemantics(t *testing.T) {
	// Restructuring the composite object in the workspace goes through
	// the engine at checkin, so reverse refs stay consistent.
	tm, m, root, parts := fixture(t)
	co, err := m.Checkout(root, true)
	if err != nil {
		t.Fatal(err)
	}
	// Drop one part from the assembly.
	ro, _ := co.Get(root)
	co.Set(root, "Subparts", ro.Get("Subparts").WithoutRef(parts[2]))
	if err := co.Checkin(); err != nil {
		t.Fatal(err)
	}
	po, _ := tm.Engine().Get(parts[2])
	if po.HasAnyReverse() {
		t.Fatal("detached part kept its reverse reference")
	}
	if v := tm.Engine().Integrity(); len(v) != 0 {
		t.Fatalf("integrity after checkin: %v", v)
	}
}

func TestCheckoutAttrRemoval(t *testing.T) {
	tm, m, root, _ := fixture(t)
	co, _ := m.Checkout(root, true)
	ro, _ := co.Get(root)
	ro.Unset("Name") // direct workspace manipulation: removal
	if err := co.Checkin(); err != nil {
		t.Fatal(err)
	}
	dbObj, _ := tm.Engine().Get(root)
	if dbObj.Has("Name") {
		t.Fatal("removed attribute survived checkin")
	}
}

func TestReleaseDiscards(t *testing.T) {
	tm, m, root, parts := fixture(t)
	co, _ := m.Checkout(root, true)
	co.Set(parts[0], "Mass", value.Real(99))
	if err := co.Release(); err != nil {
		t.Fatal(err)
	}
	dbObj, _ := tm.Engine().Get(parts[0])
	if f, _ := dbObj.Get("Mass").AsReal(); f != 1 {
		t.Fatal("released edit applied")
	}
	if err := co.Release(); !errors.Is(err, ErrDone) {
		t.Fatalf("double release: %v", err)
	}
	if _, err := co.Get(root); !errors.Is(err, ErrDone) {
		t.Fatalf("get after release: %v", err)
	}
}
