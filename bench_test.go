// Package repro's root benchmark harness: one bench (or bench family) per
// figure of "Composite Objects Revisited" plus ablations of the design
// decisions the paper argues qualitatively. The paper reports no
// quantitative results, so EXPERIMENTS.md records these measurements as
// the quantitative backing for the paper's qualitative claims; the shapes
// (who wins, where crossovers fall), not absolute numbers, are the
// reproduction targets.
package repro

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/authz"
	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/encoding"
	"repro/internal/index"
	"repro/internal/lock"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/storage"
	"repro/internal/uid"
	"repro/internal/value"
	"repro/internal/version"
)

// ---------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------

// partEngine builds a Part class whose Subparts reference kind is
// configurable.
func partEngine(b *testing.B, exclusive, dependent bool) *core.Engine {
	b.Helper()
	cat := schema.NewCatalog()
	if _, err := cat.DefineClass(schema.ClassDef{Name: "Part", Attributes: []schema.AttrSpec{
		schema.NewAttr("Name", schema.StringDomain),
		schema.NewCompositeSetAttr("Subparts", "Part").WithExclusive(exclusive).WithDependent(dependent),
	}}); err != nil {
		b.Fatal(err)
	}
	return core.NewEngine(cat)
}

// buildTree creates a part tree with the given depth and fanout rooted at
// the returned UID (depth 0 = just the root).
func buildTree(b *testing.B, e *core.Engine, depth, fanout int) uid.UID {
	b.Helper()
	root, err := e.New("Part", nil)
	if err != nil {
		b.Fatal(err)
	}
	level := []uid.UID{root.UID()}
	for d := 0; d < depth; d++ {
		var next []uid.UID
		for _, p := range level {
			for f := 0; f < fanout; f++ {
				c, err := e.New("Part", nil, core.ParentSpec{Parent: p, Attr: "Subparts"})
				if err != nil {
					b.Fatal(err)
				}
				next = append(next, c.UID())
			}
		}
		level = next
	}
	return root.UID()
}

// ---------------------------------------------------------------------
// §3 operations: components-of traversal sweeps
// ---------------------------------------------------------------------

func BenchmarkComponentsOfDepth(b *testing.B) {
	for _, depth := range []int{2, 4, 8, 16, 64} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			e := partEngine(b, true, true)
			// Chain: fanout 1.
			root := buildTree(b, e, depth, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				comps, err := e.ComponentsOf(root, core.QueryOpts{})
				if err != nil || len(comps) != depth {
					b.Fatalf("components = %d, %v", len(comps), err)
				}
			}
		})
	}
}

func BenchmarkComponentsOfFanout(b *testing.B) {
	for _, fanout := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("fanout=%d", fanout), func(b *testing.B) {
			e := partEngine(b, true, true)
			root := buildTree(b, e, 2, fanout)
			want := fanout + fanout*fanout
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				comps, err := e.ComponentsOf(root, core.QueryOpts{})
				if err != nil || len(comps) != want {
					b.Fatalf("components = %d, %v", len(comps), err)
				}
			}
		})
	}
}

// BenchmarkParentsOf measures the payoff of §2.4's reverse composite
// references: parents-of is O(parents), not a scan of all objects.
func BenchmarkParentsOf(b *testing.B) {
	for _, parents := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("parents=%d", parents), func(b *testing.B) {
			e := partEngine(b, false, false) // shared so many parents are legal
			child, _ := e.New("Part", nil)
			for i := 0; i < parents; i++ {
				p, _ := e.New("Part", nil)
				if err := e.Attach(p.UID(), "Subparts", child.UID()); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ps, err := e.ParentsOf(child.UID(), core.QueryOpts{})
				if err != nil || len(ps) != parents {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------
// Deletion Rule cascades
// ---------------------------------------------------------------------

func BenchmarkDeletionCascade(b *testing.B) {
	for _, cfg := range []struct {
		name      string
		exclusive bool
		depth     int
		fanout    int
	}{
		{"DX/n=100", true, 2, 9},   // 1+9+81 = 91 objects
		{"DX/n=1000", true, 3, 9},  // ~820
		{"DX/n=10000", true, 4, 9}, // ~7381
		{"DS/n=1000", false, 3, 9}, // shared chain, single parent each
	} {
		b.Run(cfg.name, func(b *testing.B) {
			// Fixture rebuild stays in the timed region (see
			// evolutionRun); "delete-ns/op" isolates the cascade.
			var total time.Duration
			for i := 0; i < b.N; i++ {
				e := partEngine(b, cfg.exclusive, true)
				root := buildTree(b, e, cfg.depth, cfg.fanout)
				n := e.Len()
				start := time.Now()
				deleted, err := e.Delete(root)
				total += time.Since(start)
				if err != nil || len(deleted) != n {
					b.Fatalf("deleted %d of %d: %v", len(deleted), n, err)
				}
			}
			b.ReportMetric(float64(total.Nanoseconds())/float64(b.N), "delete-ns/op")
		})
	}
}

// ---------------------------------------------------------------------
// Ablation (§2.4): reverse references in the object vs an external index
// ---------------------------------------------------------------------

// externalIndex simulates the design the paper rejected: reverse
// references kept in a separate data structure, costing a level of
// indirection on every parent lookup.
type externalIndex struct {
	parents map[uid.UID][]uid.UID
}

func BenchmarkReverseRefsInObject(b *testing.B) {
	e := partEngine(b, false, false)
	child, _ := e.New("Part", nil)
	for i := 0; i < 8; i++ {
		p, _ := e.New("Part", nil)
		e.Attach(p.UID(), "Subparts", child.UID())
	}
	o, _ := e.Get(child.UID())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(o.Parents()) != 8 {
			b.Fatal("wrong parents")
		}
	}
}

func BenchmarkReverseRefsExternalIndex(b *testing.B) {
	idx := &externalIndex{parents: make(map[uid.UID][]uid.UID)}
	child := uid.UID{Class: 1, Serial: 1}
	for i := 0; i < 8; i++ {
		idx.parents[child] = append(idx.parents[child], uid.UID{Class: 1, Serial: uint64(i + 2)})
	}
	// Fill the index with unrelated entries so the map lookup is honest.
	for i := 0; i < 10000; i++ {
		u := uid.UID{Class: 2, Serial: uint64(i)}
		idx.parents[u] = []uid.UID{{Class: 3, Serial: uint64(i)}}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(idx.parents[child]) != 8 {
			b.Fatal("wrong parents")
		}
	}
}

// BenchmarkObjectSizeWithReverseRefs quantifies the cost side of §2.4's
// trade-off: reverse references grow the stored object.
func BenchmarkObjectSizeWithReverseRefs(b *testing.B) {
	for _, parents := range []int{0, 1, 8, 64} {
		b.Run(fmt.Sprintf("parents=%d", parents), func(b *testing.B) {
			e := partEngine(b, false, false)
			child, _ := e.New("Part", map[string]value.Value{"Name": value.Str("bench-part")})
			for i := 0; i < parents; i++ {
				p, _ := e.New("Part", nil)
				e.Attach(p.UID(), "Subparts", child.UID())
			}
			o, _ := e.Get(child.UID())
			var size int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				size = len(encoding.EncodeObject(o))
			}
			b.ReportMetric(float64(size), "bytes/object")
		})
	}
}

// ---------------------------------------------------------------------
// Clustering (§2.3): page reads to scan a composite object
// ---------------------------------------------------------------------

// clusteringRun contrasts the two creation patterns §2.3's clustering
// targets. "On" models top-down creation: each composite object's
// components are created with :parent right after their root, landing on
// the root's page. "Off" models bottom-up assembly of pre-existing parts:
// the parts of all composites were created earlier, interleaved, so each
// composite's records scatter across pages. A small buffer pool then
// measures page reads needed to scan one whole composite object.
func clusteringRun(b *testing.B, clustered bool) {
	const nComposites = 64
	const fanout = 8
	dev := storage.NewMemDevice()
	pool := storage.NewBufferPool(dev, 4) // small pool: locality matters
	reg := obs.NewRegistry()
	pool.SetObservability(reg)
	st := storage.NewStore(pool)
	seg, _ := st.CreateSegment("all")
	payload := make([]byte, 400) // ~9 records per 4 KiB page
	type composite struct {
		root  uid.UID
		parts []uid.UID
	}
	comps := make([]composite, nComposites)
	serial := uint64(1)
	next := func() uid.UID { serial++; return uid.UID{Class: 1, Serial: serial} }
	put := func(id, near uid.UID) {
		if err := st.Put(seg, id, payload, near); err != nil {
			b.Fatal(err)
		}
	}
	if clustered {
		// Top-down: root, then its components clustered with it.
		for i := range comps {
			comps[i].root = next()
			put(comps[i].root, uid.Nil)
			for f := 0; f < fanout; f++ {
				id := next()
				put(id, comps[i].root)
				comps[i].parts = append(comps[i].parts, id)
			}
		}
	} else {
		// Bottom-up: all parts pre-exist, created interleaved across the
		// future composites; roots assembled afterwards.
		for f := 0; f < fanout; f++ {
			for i := range comps {
				id := next()
				put(id, uid.Nil)
				comps[i].parts = append(comps[i].parts, id)
			}
		}
		for i := range comps {
			comps[i].root = next()
			put(comps[i].root, uid.Nil)
		}
	}
	b.ResetTimer()
	pool.ResetStats()
	for i := 0; i < b.N; i++ {
		c := comps[i%len(comps)]
		if _, err := st.Get(c.root); err != nil {
			b.Fatal(err)
		}
		for _, p := range c.parts {
			if _, err := st.Get(p); err != nil {
				b.Fatal(err)
			}
		}
	}
	// Report from the registry snapshot: the same counters /metrics
	// exposes, so the JSON bench artifact and a scrape agree.
	snap := reg.Snapshot()
	hits := snap.Counters["storage_pool_hits_total"]
	misses := snap.Counters["storage_pool_misses_total"]
	b.ReportMetric(float64(misses)/float64(b.N), "pagereads/op")
	if tot := hits + misses; tot > 0 {
		b.ReportMetric(float64(hits)/float64(tot), "cache-hit-rate")
	}
	b.ReportMetric(float64(snap.Counters["storage_pool_evictions_total"]), "pool-evictions")
}

func BenchmarkClusteringOn(b *testing.B)  { clusteringRun(b, true) }
func BenchmarkClusteringOff(b *testing.B) { clusteringRun(b, false) }

// ---------------------------------------------------------------------
// Clustering policy bake-off (tentpole): first-parent vs class vs usage
// ---------------------------------------------------------------------

// placementDB opens a database with the given clustering policy, a
// 4-page buffer pool (locality matters), and 64 Doc composites of 8
// Paras each. Payloads are ~400 bytes, so a unit (9 records) spans
// pages unless clustered. Creation order is the workload knob: top-down
// builds each Doc and its Paras together (§2.3's favorable case);
// interleaved round-robins one Para per Doc, scattering every unit
// across the class extent at birth.
func placementDB(b *testing.B, policy string, interleaved bool, hotMisses int) (*db.DB, [][]uid.UID) {
	b.Helper()
	d, err := db.Open(db.Options{
		Placement:          policy,
		PoolPages:          4,
		ReclusterHotMisses: hotMisses,
		ReclusterBatch:     64,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { d.Close() })
	if _, err := d.DefineClass(schema.ClassDef{Name: "Para", Attributes: []schema.AttrSpec{
		schema.NewAttr("Text", schema.StringDomain),
	}}); err != nil {
		b.Fatal(err)
	}
	if _, err := d.DefineClass(schema.ClassDef{Name: "Doc", Attributes: []schema.AttrSpec{
		schema.NewCompositeSetAttr("Paras", "Para"),
	}}); err != nil {
		b.Fatal(err)
	}
	const nDocs, fanout = 64, 8
	payload := value.Str(strings.Repeat("x", 400))
	units := make([][]uid.UID, nDocs)
	makeDoc := func(i int) {
		doc, err := d.Make("Doc", nil)
		if err != nil {
			b.Fatal(err)
		}
		units[i] = []uid.UID{doc.UID()}
	}
	makePara := func(i int) {
		p, err := d.Make("Para", map[string]value.Value{"Text": payload},
			core.ParentSpec{Parent: units[i][0], Attr: "Paras"})
		if err != nil {
			b.Fatal(err)
		}
		units[i] = append(units[i], p.UID())
	}
	if interleaved {
		for i := range units {
			makeDoc(i)
		}
		for f := 0; f < fanout; f++ {
			for i := range units {
				makePara(i)
			}
		}
	} else {
		for i := range units {
			makeDoc(i)
			for f := 0; f < fanout; f++ {
				makePara(i)
			}
		}
	}
	return d, units
}

// coldTraverse reads every record of n successive units straight from
// the store (cycling over all units, so the 4-page pool never keeps a
// working set) and returns the buffer-pool misses per unit traversal.
func coldTraverse(b *testing.B, d *db.DB, units [][]uid.UID, n int) float64 {
	b.Helper()
	miss0 := d.Observability().Counter("storage_pool_misses_total").Load()
	for i := 0; i < n; i++ {
		for _, id := range units[i%len(units)] {
			if _, err := d.Store().Get(id); err != nil {
				b.Fatal(err)
			}
		}
	}
	misses := d.Observability().Counter("storage_pool_misses_total").Load() - miss0
	return float64(misses) / float64(n)
}

// BenchmarkColdTraversalPlacement is the bake-off: page I/O to scan one
// whole composite object cold, per placement policy, under both creation
// orders. Top-down creation lets first-parent (and even class placement,
// accidentally — records land in creation order) stay contiguous.
// Interleaved creation is the separator: class scatters every unit,
// first-parent degrades too (the hinted pages fill — §2.3 clustering is
// best-effort), while usage starts scattered, earns heat from the very
// misses being measured, and converges via the online reclusterer.
func BenchmarkColdTraversalPlacement(b *testing.B) {
	for _, creation := range []string{"topdown", "interleaved"} {
		for _, policy := range []string{
			storage.PlacementFirstParent, storage.PlacementClass, storage.PlacementUsage,
		} {
			b.Run(fmt.Sprintf("creation=%s/policy=%s", creation, policy), func(b *testing.B) {
				d, units := placementDB(b, policy, creation == "interleaved", 8)
				if policy == storage.PlacementUsage {
					// Usage-driven convergence: cold traversals charge each
					// unit's misses, then reclustering consumes the heat.
					coldTraverse(b, d, units, 2*len(units))
					if _, err := d.ReclusterNow(); err != nil {
						b.Fatal(err)
					}
				}
				b.ResetTimer()
				pages := coldTraverse(b, d, units, b.N)
				b.StopTimer()
				b.ReportMetric(pages, "pages/traversal")
				b.ReportMetric(float64(d.ReclusterStatus().Migrations), "recluster-migrations")
			})
		}
	}
}

// BenchmarkReclusterSkewedHot shows the online reclusterer paying off on
// a skewed-hot workload: class placement scatters every unit at birth, 4
// of 64 units take every read, and one recluster pass (fed by the heat
// those reads charged) collapses the hot units' page I/O. The threshold
// (32) sits above each unit's write-activity heat (8 creations) and
// below the hot units' read-miss heat, so exactly the read-hot units
// migrate. The before/after miss rates and the migration count are the
// reported win.
func BenchmarkReclusterSkewedHot(b *testing.B) {
	d, units := placementDB(b, storage.PlacementClass, true, 32)
	hot := units[:4]
	before := coldTraverse(b, d, hot, 8*len(hot))
	moved, err := d.ReclusterNow()
	if err != nil {
		b.Fatal(err)
	}
	if moved != len(hot) {
		b.Fatalf("migrated %d units, want the %d read-hot ones", moved, len(hot))
	}
	b.ResetTimer()
	after := coldTraverse(b, d, hot, b.N)
	b.StopTimer()
	b.ReportMetric(after, "pages/traversal")
	b.ReportMetric(before, "pages/traversal-before")
	b.ReportMetric(float64(moved), "recluster-migrations")
}

// ---------------------------------------------------------------------
// Schema evolution (§4.3): immediate vs deferred flag rewriting
// ---------------------------------------------------------------------

// evolutionRun performs an I2 change over nRefs referenced instances and
// then accesses a fraction of them; deferred should win when the accessed
// fraction is small (the paper's motivation for the operation log). The
// per-iteration fixture rebuild is inside the timed region (so go test's
// iteration calibration stays sane); the reported "evolution-ns/op"
// metric isolates the change-plus-access cost, which is the number
// EXPERIMENTS.md compares.
func evolutionRun(b *testing.B, deferred bool, nRefs, accessed int) {
	var total time.Duration
	for i := 0; i < b.N; i++ {
		cat := schema.NewCatalog()
		cat.DefineClass(schema.ClassDef{Name: "C"})
		cat.DefineClass(schema.ClassDef{Name: "Cp", Attributes: []schema.AttrSpec{
			schema.NewCompositeSetAttr("A", "C"),
		}})
		e := core.NewEngine(cat)
		parent, _ := e.New("Cp", nil)
		children := make([]uid.UID, nRefs)
		for j := 0; j < nRefs; j++ {
			c, _ := e.New("C", nil, core.ParentSpec{Parent: parent.UID(), Attr: "A"})
			children[j] = c.UID()
		}
		start := time.Now()
		if err := e.ChangeAttributeType("Cp", "A", schema.ChangeToShared, deferred); err != nil {
			b.Fatal(err)
		}
		for j := 0; j < accessed; j++ {
			if _, err := e.Get(children[j]); err != nil {
				b.Fatal(err)
			}
		}
		total += time.Since(start)
	}
	b.ReportMetric(float64(total.Nanoseconds())/float64(b.N), "evolution-ns/op")
}

func BenchmarkSchemaEvolution(b *testing.B) {
	const nRefs = 1000
	for _, accessed := range []int{0, 10, 100, 1000} {
		b.Run(fmt.Sprintf("immediate/touch=%d", accessed), func(b *testing.B) {
			evolutionRun(b, false, nRefs, accessed)
		})
		b.Run(fmt.Sprintf("deferred/touch=%d", accessed), func(b *testing.B) {
			evolutionRun(b, true, nRefs, accessed)
		})
	}
}

// ---------------------------------------------------------------------
// Locking (§7, Figures 7–9)
// ---------------------------------------------------------------------

func BenchmarkLockCompat(b *testing.B) {
	modes := lock.Modes
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := modes[i%len(modes)]
		c := modes[(i/len(modes))%len(modes)]
		lock.Compatible(a, c)
	}
}

// protocolBench acquires and releases the full composite protocol lock
// set against a hierarchy with nClasses component classes.
func protocolBench(b *testing.B, shared bool) {
	cat := schema.NewCatalog()
	cat.DefineClass(schema.ClassDef{Name: "Leaf"})
	prev := "Leaf"
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("L%d", i)
		cat.DefineClass(schema.ClassDef{Name: name, Attributes: []schema.AttrSpec{
			schema.NewCompositeSetAttr("Kids", prev).WithExclusive(!shared).WithDependent(false),
		}})
		prev = name
	}
	e := core.NewEngine(cat)
	root, _ := e.New(prev, nil)
	p := lock.NewProtocol(lock.NewManager(), e)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := lock.TxID(i + 1)
		if err := p.LockCompositeWrite(tx, root.UID()); err != nil {
			b.Fatal(err)
		}
		p.M.ReleaseAll(tx)
	}
}

func BenchmarkLockExclusiveProtocol(b *testing.B) { protocolBench(b, false) }
func BenchmarkLockSharedProtocol(b *testing.B)    { protocolBench(b, true) }

// BenchmarkRootLockVsHierarchical compares the [GARZ88] root-locking
// algorithm (lock the roots of the accessed component) with the
// hierarchical protocol (lock the instance + class intents) for direct
// component access in a deep exclusive hierarchy.
func BenchmarkRootLockVsHierarchical(b *testing.B) {
	e := partEngine(b, true, false)
	root := buildTree(b, e, 6, 1) // depth-6 chain
	comps, _ := e.ComponentsOf(root, core.QueryOpts{})
	leaf := comps[len(comps)-1]
	b.Run("rootlock", func(b *testing.B) {
		p := lock.NewProtocol(lock.NewManager(), e)
		for i := 0; i < b.N; i++ {
			tx := lock.TxID(i + 1)
			if err := p.LockViaRoots(tx, leaf, false); err != nil {
				b.Fatal(err)
			}
			p.M.ReleaseAll(tx)
		}
	})
	b.Run("hierarchical", func(b *testing.B) {
		p := lock.NewProtocol(lock.NewManager(), e)
		for i := 0; i < b.N; i++ {
			tx := lock.TxID(i + 1)
			if err := p.LockInstance(tx, leaf, false); err != nil {
				b.Fatal(err)
			}
			p.M.ReleaseAll(tx)
		}
	})
}

// ---------------------------------------------------------------------
// Authorization (§6, Figures 4–6)
// ---------------------------------------------------------------------

// authFixture: one composite object with n components, alice granted sR
// on the root.
func authFixture(b *testing.B, n int) (*core.Engine, *authz.Store, uid.UID, []uid.UID) {
	e := partEngine(b, false, false)
	root, _ := e.New("Part", nil)
	comps := make([]uid.UID, n)
	for i := 0; i < n; i++ {
		c, _ := e.New("Part", nil, core.ParentSpec{Parent: root.UID(), Attr: "Subparts"})
		comps[i] = c.UID()
	}
	st := authz.NewStore(e)
	if err := st.GrantObject("alice", root.UID(), authz.SR); err != nil {
		b.Fatal(err)
	}
	return e, st, root.UID(), comps
}

// BenchmarkImplicitAuthCheck: one stored grant, checks deduce through the
// graph (the paper's storage-minimizing design).
func BenchmarkImplicitAuthCheck(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("components=%d", n), func(b *testing.B) {
			_, st, _, comps := authFixture(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ok, err := st.Check("alice", comps[i%len(comps)], authz.Read)
				if err != nil || !ok {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPerObjectAuthCheck: the alternative the paper's implicit
// authorization avoids — one materialized grant per component. Checks are
// O(1) map hits, but the grant storage is O(components); the benchmark
// reports grants stored so EXPERIMENTS.md can show the trade-off.
func BenchmarkPerObjectAuthCheck(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("components=%d", n), func(b *testing.B) {
			grants := make(map[uid.UID]map[string]authz.Auth, n+1)
			e := partEngine(b, false, false)
			root, _ := e.New("Part", nil)
			comps := make([]uid.UID, n)
			grants[root.UID()] = map[string]authz.Auth{"alice": authz.SR}
			for i := 0; i < n; i++ {
				c, _ := e.New("Part", nil, core.ParentSpec{Parent: root.UID(), Attr: "Subparts"})
				comps[i] = c.UID()
				grants[c.UID()] = map[string]authz.Auth{"alice": authz.SR}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a, ok := grants[comps[i%len(comps)]]["alice"]
				if !ok || !a.Positive {
					b.Fatal("missing grant")
				}
			}
			b.ReportMetric(float64(n+1), "grants-stored")
		})
	}
}

// BenchmarkGrantOnComposite measures grant-time conflict checking, which
// walks the composite object.
func BenchmarkGrantOnComposite(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("components=%d", n), func(b *testing.B) {
			_, st, root, _ := authFixture(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sub := fmt.Sprintf("user%d", i)
				if err := st.GrantObject(sub, root, authz.WR); err != nil {
					b.Fatal(err)
				}
				st.RevokeObject(sub, root)
			}
		})
	}
}

// ---------------------------------------------------------------------
// Versions (§5, Figures 1–3)
// ---------------------------------------------------------------------

func versionFixture(b *testing.B) (*core.Engine, *version.Manager, uid.UID, uid.UID) {
	cat := schema.NewCatalog()
	cat.DefineClass(schema.ClassDef{Name: "D", Versionable: true})
	cat.DefineClass(schema.ClassDef{Name: "C", Versionable: true, Attributes: []schema.AttrSpec{
		schema.NewAttr("Name", schema.StringDomain),
		schema.NewCompositeAttr("A", "D").WithDependent(false),
	}})
	e := core.NewEngine(cat)
	m := version.NewManager(e)
	_, dv, err := m.CreateVersionable("D", nil)
	if err != nil {
		b.Fatal(err)
	}
	g, cv, err := m.CreateVersionable("C", map[string]value.Value{"Name": value.Str("x")})
	if err != nil {
		b.Fatal(err)
	}
	if err := m.Attach(cv, "A", dv); err != nil {
		b.Fatal(err)
	}
	return e, m, g, cv
}

func BenchmarkDeriveVersion(b *testing.B) {
	_, m, _, cv := versionFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Derive(cv); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDynamicBind(b *testing.B) {
	_, m, g, _ := versionFixture(b)
	for i := 0; i < 10; i++ {
		info, _ := m.Info(g)
		if _, err := m.Derive(info.Versions[len(info.Versions)-1]); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Resolve(g); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// Creation paths: extended model vs the KIM87b baseline
// ---------------------------------------------------------------------

func BenchmarkMakeTopDown(b *testing.B) {
	// Creating components under an existing parent (the only path in the
	// legacy model).
	e := partEngine(b, true, true)
	root, _ := e.New("Part", nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.New("Part", nil, core.ParentSpec{Parent: root.UID(), Attr: "Subparts"}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMakeBottomUp(b *testing.B) {
	// Assembling pre-existing objects (the extended model's addition).
	e := partEngine(b, true, false)
	ids := make([]uid.UID, b.N)
	for i := range ids {
		o, _ := e.New("Part", nil)
		ids[i] = o.UID()
	}
	root, _ := e.New("Part", nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Attach(root.UID(), "Subparts", ids[i]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMakeComponentCheck(b *testing.B) {
	// The §2.4 algorithm alone: verify + insert reverse ref on attach,
	// measured via attach/detach pairs on a single child.
	e := partEngine(b, true, false)
	root, _ := e.New("Part", nil)
	child, _ := e.New("Part", nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Attach(root.UID(), "Subparts", child.UID()); err != nil {
			b.Fatal(err)
		}
		if err := e.Detach(root.UID(), "Subparts", child.UID()); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// Storage substrate
// ---------------------------------------------------------------------

func BenchmarkEncodeObject(b *testing.B) {
	e := partEngine(b, false, false)
	o, _ := e.New("Part", map[string]value.Value{"Name": value.Str("a part with a name")})
	for i := 0; i < 4; i++ {
		p, _ := e.New("Part", nil)
		e.Attach(p.UID(), "Subparts", o.UID())
	}
	obj, _ := e.Get(o.UID())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		encoding.EncodeObject(obj)
	}
}

func BenchmarkDecodeObject(b *testing.B) {
	e := partEngine(b, false, false)
	o, _ := e.New("Part", map[string]value.Value{"Name": value.Str("a part with a name")})
	for i := 0; i < 4; i++ {
		p, _ := e.New("Part", nil)
		e.Attach(p.UID(), "Subparts", o.UID())
	}
	obj, _ := e.Get(o.UID())
	rec := encoding.EncodeObject(obj)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := encoding.DecodeObject(rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStorePut(b *testing.B) {
	st := storage.NewStore(storage.NewBufferPool(storage.NewMemDevice(), 64))
	seg, _ := st.CreateSegment("bench")
	rec := make([]byte, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := uid.UID{Class: 1, Serial: uint64(i + 1)}
		if err := st.Put(seg, id, rec, uid.Nil); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// Associative queries over the part hierarchy (internal/query)
// ---------------------------------------------------------------------

func BenchmarkQuerySelect(b *testing.B) {
	// A fleet of vehicles; predicates of increasing depth.
	cat := schema.NewCatalog()
	cat.DefineClass(schema.ClassDef{Name: "Body", Attributes: []schema.AttrSpec{
		schema.NewAttr("Weight", schema.IntDomain),
	}})
	cat.DefineClass(schema.ClassDef{Name: "Car", Attributes: []schema.AttrSpec{
		schema.NewAttr("Id", schema.IntDomain),
		schema.NewCompositeAttr("Body", "Body").WithDependent(false),
	}})
	e := core.NewEngine(cat)
	const fleet = 1000
	for i := 0; i < fleet; i++ {
		body, _ := e.New("Body", map[string]value.Value{"Weight": value.Int(int64(i % 200))})
		if _, err := e.New("Car", map[string]value.Value{
			"Id":   value.Int(int64(i)),
			"Body": value.Ref(body.UID()),
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("scalar", func(b *testing.B) {
		pred := query.Attr("Id").Lt(value.Int(100))
		for i := 0; i < b.N; i++ {
			got, err := query.Select(e, "Car", false, pred)
			if err != nil || len(got) != 100 {
				b.Fatalf("%d, %v", len(got), err)
			}
		}
	})
	b.Run("path-1-hop", func(b *testing.B) {
		pred := query.Attr("Body", "Weight").Ge(value.Int(150))
		for i := 0; i < b.N; i++ {
			got, err := query.Select(e, "Car", false, pred)
			if err != nil || len(got) != fleet/4 {
				b.Fatalf("%d, %v", len(got), err)
			}
		}
	})
}

// BenchmarkIndexedVsScan: equality selection with and without a hash
// index over a 10k-instance extent.
func BenchmarkIndexedVsScan(b *testing.B) {
	cat := schema.NewCatalog()
	cat.DefineClass(schema.ClassDef{Name: "Part", Attributes: []schema.AttrSpec{
		schema.NewAttr("Material", schema.StringDomain),
	}})
	e := core.NewEngine(cat)
	ix := index.NewManager(e)
	e.SetHook(core.MultiHook{ix})
	mats := []string{"steel", "alu", "brass", "nylon"}
	const n = 10000
	for i := 0; i < n; i++ {
		if _, err := e.New("Part", map[string]value.Value{
			"Material": value.Str(mats[i%len(mats)]),
		}); err != nil {
			b.Fatal(err)
		}
	}
	if err := ix.CreateIndex("Part", "Material"); err != nil {
		b.Fatal(err)
	}
	pred := query.Attr("Material").Eq(value.Str("brass"))
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			got, err := query.Select(e, "Part", false, pred)
			if err != nil || len(got) != n/len(mats) {
				b.Fatalf("%d, %v", len(got), err)
			}
		}
	})
	b.Run("indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			got, err := query.SelectIndexed(e, ix, "Part", false, pred)
			if err != nil || len(got) != n/len(mats) {
				b.Fatalf("%d, %v", len(got), err)
			}
		}
	})
}

// ---------------------------------------------------------------------
// Concurrent read path (tentpole): parallel query throughput
// ---------------------------------------------------------------------

// treeNodes is the node count of a buildTree(depth, fanout) tree,
// excluding the root (what ComponentsOf returns).
func treeNodes(depth, fanout int) int {
	n, level := 0, 1
	for d := 0; d < depth; d++ {
		level *= fanout
		n += level
	}
	return n
}

// BenchmarkComponentsOfParallel drives the RLock read path from GOMAXPROCS
// goroutines over a depth-8 / fanout-4 part tree (87380 components). The
// serialized twin below forces the pre-refactor behavior — every query
// exclusive — so the ratio between the two is the read-path speedup.
// Plan-cache effectiveness is reported as a metric.
func BenchmarkComponentsOfParallel(b *testing.B) {
	e := partEngine(b, true, true)
	root := buildTree(b, e, 8, 4)
	want := treeNodes(8, 4)
	e.ResetStats()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			comps, err := e.ComponentsOf(root, core.QueryOpts{})
			if err != nil || len(comps) != want {
				b.Errorf("components = %d, %v", len(comps), err)
				return
			}
		}
	})
	s := e.Stats()
	if tot := s.PlanHits + s.PlanMisses; tot > 0 {
		b.ReportMetric(float64(s.PlanHits)/float64(tot), "plan-hit-rate")
	}
	// Aggregate hit rate across the engine's caches, read from the
	// registry snapshot (the same numbers /metrics serves).
	snap := e.Observability().Snapshot()
	hits := snap.Counters["core_cache_plan_hits_total"] +
		snap.Counters["core_cache_ancestor_hits_total"] +
		snap.Counters["core_cache_partition_hits_total"]
	misses := snap.Counters["core_cache_plan_misses_total"] +
		snap.Counters["core_cache_ancestor_misses_total"] +
		snap.Counters["core_cache_partition_misses_total"]
	if tot := hits + misses; tot > 0 {
		b.ReportMetric(float64(hits)/float64(tot), "cache-hit-rate")
	}
}

// BenchmarkComponentsOfSerialized is the baseline for the parallel bench:
// identical tree and query mix, but an external mutex serializes every
// query, reproducing the old engine-wide exclusive lock.
func BenchmarkComponentsOfSerialized(b *testing.B) {
	e := partEngine(b, true, true)
	root := buildTree(b, e, 8, 4)
	want := treeNodes(8, 4)
	var mu sync.Mutex
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			mu.Lock()
			comps, err := e.ComponentsOf(root, core.QueryOpts{})
			mu.Unlock()
			if err != nil || len(comps) != want {
				b.Errorf("components = %d, %v", len(comps), err)
				return
			}
		}
	})
}

// BenchmarkAncestorsOfCached measures the generation-checked ancestor
// cache on a static graph: after the first miss per leaf, every query is
// a signature validation plus a copy. Hit rate is reported as a metric.
func BenchmarkAncestorsOfCached(b *testing.B) {
	e := partEngine(b, true, true)
	root := buildTree(b, e, 8, 2)
	comps, err := e.ComponentsOf(root, core.QueryOpts{})
	if err != nil {
		b.Fatal(err)
	}
	leaf := comps[len(comps)-1]
	depth := 8
	e.ResetStats()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			ancs, err := e.AncestorsOf(leaf, core.QueryOpts{})
			if err != nil || len(ancs) != depth {
				b.Errorf("ancestors = %d, %v", len(ancs), err)
				return
			}
		}
	})
	s := e.Stats()
	if tot := s.AncestorHits + s.AncestorMisses; tot > 0 {
		b.ReportMetric(float64(s.AncestorHits)/float64(tot), "anc-hit-rate")
	}
}

// ---------------------------------------------------------------------
// Observability overhead (internal/obs)
// ---------------------------------------------------------------------

// BenchmarkObsDisabled pins the cost of the disabled instrumentation on
// the hot traversal path. "baseline" binds a nil registry — every
// instrument is a nil pointer and each emission site is a single branch,
// the closest buildable approximation of no instrumentation at all.
// "registry" is the default configuration: live counters, tracer and
// slow log off. EXPERIMENTS.md records the two; the acceptance budget is
// registry within 5% of baseline.
func BenchmarkObsDisabled(b *testing.B) {
	run := func(b *testing.B, reg *obs.Registry) {
		e := partEngine(b, true, true)
		e.SetObservability(reg)
		root := buildTree(b, e, 8, 2)
		want := treeNodes(8, 2)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			comps, err := e.ComponentsOf(root, core.QueryOpts{})
			if err != nil || len(comps) != want {
				b.Fatalf("components = %d, %v", len(comps), err)
			}
		}
	}
	b.Run("baseline", func(b *testing.B) { run(b, nil) })
	b.Run("registry", func(b *testing.B) { run(b, obs.NewRegistry()) })
	b.Run("tracing", func(b *testing.B) {
		reg := obs.NewRegistry()
		reg.Tracer().SetActive(true)
		run(b, reg)
	})
}

// BenchmarkProfiledTraversal prices the query-profiling layer on the hot
// traversal path. Phase one runs with no ProfCtx attached — every
// emission site is a nil check, the always-on production configuration;
// phase two attaches a fresh ProfCtx per query. The difference,
// "profile-overhead-pct", is what a user pays for (profile ...) and the
// acceptance budget bounds the disabled path's cost. "flight-record-ns"
// prices one black-box flight-recorder append, the only instrumentation
// that stays hot with profiling off.
func BenchmarkProfiledTraversal(b *testing.B) {
	e := partEngine(b, true, true)
	root := buildTree(b, e, 8, 2)
	want := treeNodes(8, 2)
	run := func(n int, prof bool) time.Duration {
		start := time.Now()
		for i := 0; i < n; i++ {
			var q core.QueryOpts
			if prof {
				q.Prof = obs.NewProfCtx("bench")
			}
			comps, err := e.ComponentsOf(root, q)
			if err != nil || len(comps) != want {
				b.Fatalf("components = %d, %v", len(comps), err)
			}
			if prof {
				q.Prof.Finish()
			}
		}
		return time.Since(start)
	}
	run(10, false) // warm the plan and ancestor caches
	run(10, true)
	b.ResetTimer()
	off := run(b.N, false)
	on := run(b.N, true)
	b.StopTimer()
	if off > 0 {
		b.ReportMetric((float64(on-off)/float64(off))*100, "profile-overhead-pct")
	}
	f := obs.NewFlightRecorder(1024)
	const appends = 100000
	start := time.Now()
	for i := 0; i < appends; i++ {
		f.Record("bench.op", "root", time.Microsecond, "ok", "visited=1")
	}
	b.ReportMetric(float64(time.Since(start).Nanoseconds())/appends, "flight-record-ns")
}

// BenchmarkBufferPoolParallelFetch measures the striped pool under
// concurrent page faults: 8-way shard striping lets fetches of different
// pages proceed without contending on one pool mutex.
func BenchmarkBufferPoolParallelFetch(b *testing.B) {
	dev := storage.NewMemDevice()
	bp := storage.NewBufferPool(dev, 256)
	var ids []storage.PageID
	for i := 0; i < 128; i++ {
		p, err := bp.NewPage()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := p.Insert([]byte{byte(i)}); err != nil {
			b.Fatal(err)
		}
		ids = append(ids, p.ID)
		bp.Unpin(p.ID, true)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			id := ids[i%len(ids)]
			i++
			p, err := bp.Fetch(id)
			if err != nil {
				b.Errorf("fetch: %v", err)
				return
			}
			if _, err := p.Read(0); err != nil {
				b.Errorf("read: %v", err)
				return
			}
			bp.Unpin(id, false)
		}
	})
}

// ---------------------------------------------------------------------
// Commit throughput: group commit under parallel committers
// ---------------------------------------------------------------------

// BenchmarkCommitThroughput measures durable commits (SyncWAL) against
// an on-disk database with 1..32 parallel committers, each transaction
// creating one object. The fsyncs/commit metric is the group-commit
// amortization factor: 1.0 for a lone committer (every commit pays its
// own fsync), well below 1 once concurrent committers share batches.
func BenchmarkCommitThroughput(b *testing.B) {
	for _, committers := range []int{1, 2, 8, 32} {
		b.Run(fmt.Sprintf("committers=%d", committers), func(b *testing.B) {
			d, err := db.Open(db.Options{Dir: b.TempDir(), SyncWAL: true})
			if err != nil {
				b.Fatal(err)
			}
			defer d.Close()
			if _, err := d.DefineClass(schema.ClassDef{Name: "Note", Attributes: []schema.AttrSpec{
				schema.NewAttr("Body", schema.StringDomain),
			}}); err != nil {
				b.Fatal(err)
			}
			reg := d.Observability()
			fsync0 := reg.Counter("wal_fsync_total").Load()
			commit0 := reg.Counter("txn_commit_total").Load()
			var next atomic.Int64
			var wg sync.WaitGroup
			b.ResetTimer()
			for c := 0; c < committers; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for next.Add(1) <= int64(b.N) {
						tx := d.Begin()
						if _, err := tx.New("Note", map[string]value.Value{"Body": value.Str("x")}); err != nil {
							b.Error(err)
							tx.Abort()
							return
						}
						if err := tx.Commit(); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			commits := reg.Counter("txn_commit_total").Load() - commit0
			fsyncs := reg.Counter("wal_fsync_total").Load() - fsync0
			if commits > 0 {
				b.ReportMetric(float64(fsyncs)/float64(commits), "fsyncs/commit")
			}
		})
	}
}

// BenchmarkNetCommitThroughput is BenchmarkCommitThroughput through the
// TCP front end: each client owns a connection and drives one durable
// commit per request frame — (begin)(make ...)(commit) as a single
// program, so a transaction costs exactly one round trip. Comparing
// fsyncs/commit against the embedded bench shows whether group-commit
// amortization survives the wire; comparing ns/op prices the protocol
// overhead (framing, parse, render) per transaction.
func BenchmarkNetCommitThroughput(b *testing.B) {
	for _, clients := range []int{1, 2, 8, 32} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			d, err := db.Open(db.Options{Dir: b.TempDir(), SyncWAL: true})
			if err != nil {
				b.Fatal(err)
			}
			defer d.Close()
			if _, err := d.DefineClass(schema.ClassDef{Name: "Note", Attributes: []schema.AttrSpec{
				schema.NewAttr("Body", schema.StringDomain),
			}}); err != nil {
				b.Fatal(err)
			}
			srv := server.New(d, server.Config{Addr: "127.0.0.1:0", MaxConns: clients + 1})
			if err := srv.Start(); err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			conns := make([]*client.Client, clients)
			for i := range conns {
				if conns[i], err = client.Dial(srv.Addr()); err != nil {
					b.Fatal(err)
				}
				defer conns[i].Close()
			}
			reg := d.Observability()
			fsync0 := reg.Counter("wal_fsync_total").Load()
			commit0 := reg.Counter("txn_commit_total").Load()
			var next atomic.Int64
			var wg sync.WaitGroup
			b.ResetTimer()
			for _, c := range conns {
				wg.Add(1)
				go func(c *client.Client) {
					defer wg.Done()
					for next.Add(1) <= int64(b.N) {
						if _, err := c.Do(`(begin) (make Note :Body "x") (commit)`); err != nil {
							b.Error(err)
							return
						}
					}
				}(c)
			}
			wg.Wait()
			b.StopTimer()
			commits := reg.Counter("txn_commit_total").Load() - commit0
			fsyncs := reg.Counter("wal_fsync_total").Load() - fsync0
			if commits > 0 {
				b.ReportMetric(float64(fsyncs)/float64(commits), "fsyncs/commit")
			}
		})
	}
}

// BenchmarkMixedWritersSharded prices the per-shard WAL design: 8
// parallel writers over a store partitioned into 1/2/4/8 composite-unit
// shards, each transaction mutating one pre-built Document hierarchy
// (single-shard commit, the common case) except every 8th, which spans
// two hierarchies and exercises the cross-shard 2PC. With one shard all
// writers serialize on one log's group committer; with more shards,
// commits on different units sync different files, so fsync bandwidth —
// the durable-commit bottleneck — scales until cross-shard prepares
// (which fsync every participant) eat the gain. fsyncs/commit is the
// aggregate over every shard WAL (the registry sums same-named
// instruments), cross-commit-rate the observed 2PC fraction.
func BenchmarkMixedWritersSharded(b *testing.B) {
	const writers = 8
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			d, err := db.Open(db.Options{Dir: b.TempDir(), SyncWAL: true, Shards: shards})
			if err != nil {
				b.Fatal(err)
			}
			defer d.Close()
			if _, err := d.DefineClass(schema.ClassDef{Name: "Para", Attributes: []schema.AttrSpec{
				schema.NewAttr("Text", schema.StringDomain),
			}}); err != nil {
				b.Fatal(err)
			}
			if _, err := d.DefineClass(schema.ClassDef{Name: "Doc", Attributes: []schema.AttrSpec{
				schema.NewAttr("Title", schema.StringDomain),
				schema.NewCompositeSetAttr("Paras", "Para"),
			}}); err != nil {
				b.Fatal(err)
			}
			docs := make([]uid.UID, writers)
			for i := range docs {
				o, err := d.Make("Doc", map[string]value.Value{"Title": value.Str(fmt.Sprint(i))})
				if err != nil {
					b.Fatal(err)
				}
				docs[i] = o.UID()
			}
			reg := d.Observability()
			fsync0 := reg.Counter("wal_fsync_total").Load()
			commit0 := reg.Counter("txn_commit_total").Load()
			cross0 := reg.Counter("storage_shard_cross_commit_total").Load()
			var next atomic.Int64
			var wg sync.WaitGroup
			b.ResetTimer()
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for {
						n := next.Add(1)
						if n > int64(b.N) {
							return
						}
						// Every 8th transaction spans this writer's doc and the
						// next one's; writing in index order keeps the lock
						// acquisition a total order, so contention costs waits,
						// not deadlock-retry storms.
						targets := docs[w : w+1]
						if n%8 == 0 {
							lo, hi := w, (w+1)%writers
							if hi < lo {
								lo, hi = hi, lo
							}
							targets = []uid.UID{docs[lo], docs[hi]}
						}
						tx := d.Begin()
						ok := true
						for _, id := range targets {
							if err := tx.WriteAttr(id, "Title", value.Str(fmt.Sprint(n))); err != nil {
								// A deadlock verdict is still possible against
								// the single-doc writers; retry with a fresh n.
								tx.Abort()
								ok = false
								break
							}
						}
						if !ok {
							continue
						}
						if err := tx.Commit(); err != nil {
							b.Error(err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			b.StopTimer()
			commits := reg.Counter("txn_commit_total").Load() - commit0
			fsyncs := reg.Counter("wal_fsync_total").Load() - fsync0
			cross := reg.Counter("storage_shard_cross_commit_total").Load() - cross0
			if commits > 0 {
				b.ReportMetric(float64(fsyncs)/float64(commits), "fsyncs/commit")
				b.ReportMetric(float64(cross)/float64(commits), "cross-commit-rate")
			}
		})
	}
}

// ---------------------------------------------------------------------
// Composite-granularity write admission (§7 protocol as a concurrency
// control): disjoint-hierarchy writers against the global-mutex design
// ---------------------------------------------------------------------

// concurrentWriteDB builds a durable database with an
// independent-exclusive Part hierarchy per writer (so detach never
// reaps the leaf) plus one bare leaf per writer to attach and detach.
func concurrentWriteDB(b *testing.B, workers int) (*db.DB, []uid.UID, []uid.UID) {
	b.Helper()
	d, err := db.Open(db.Options{Dir: b.TempDir(), SyncWAL: true})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := d.DefineClass(schema.ClassDef{Name: "Part", Attributes: []schema.AttrSpec{
		schema.NewAttr("Name", schema.StringDomain),
		schema.NewCompositeSetAttr("Subparts", "Part").WithDependent(false),
	}}); err != nil {
		b.Fatal(err)
	}
	roots := make([]uid.UID, workers)
	leaves := make([]uid.UID, workers)
	for w := range roots {
		r, err := d.Make("Part", map[string]value.Value{"Name": value.Str("root")})
		if err != nil {
			b.Fatal(err)
		}
		roots[w] = r.UID()
		// A couple of permanent components so each hierarchy is a real
		// composite object, not a bare instance.
		for i := 0; i < 2; i++ {
			if _, err := d.Make("Part", nil, core.ParentSpec{Parent: r.UID(), Attr: "Subparts"}); err != nil {
				b.Fatal(err)
			}
		}
		l, err := d.Make("Part", nil)
		if err != nil {
			b.Fatal(err)
		}
		leaves[w] = l.UID()
	}
	return d, roots, leaves
}

// runWriters drives b.N mutations split across the writer goroutines and
// reports the aggregate mutation throughput plus the fsync amortization
// achieved by group commit.
func runWriters(b *testing.B, d *db.DB, workers int, op func(worker, iter int) error) {
	var next atomic.Int64
	var wg sync.WaitGroup
	fsync0 := d.Observability().Counter("wal_fsync_total").Load()
	b.ResetTimer()
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				if next.Add(1) > int64(b.N) {
					return
				}
				if err := op(w, i); err != nil {
					b.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	b.StopTimer()
	if s := elapsed.Seconds(); s > 0 {
		b.ReportMetric(float64(b.N)/s, "mut/s")
	}
	fsyncs := d.Observability().Counter("wal_fsync_total").Load() - fsync0
	b.ReportMetric(float64(fsyncs)/float64(b.N), "fsyncs/mut")
}

// BenchmarkAttachParallel: each writer attaches and detaches its own bare
// leaf under its own composite root. Admission resolves both sides to
// disjoint unit roots, so writers only share the WAL group committer.
func BenchmarkAttachParallel(b *testing.B) {
	for _, workers := range []int{1, 4, 8, 16} {
		b.Run(fmt.Sprintf("writers-%d", workers), func(b *testing.B) {
			d, roots, leaves := concurrentWriteDB(b, workers)
			defer d.Close()
			runWriters(b, d, workers, func(w, i int) error {
				if i%2 == 0 {
					return d.Attach(roots[w], "Subparts", leaves[w])
				}
				return d.Detach(roots[w], "Subparts", leaves[w])
			})
		})
	}
}

// BenchmarkMixedWriters compares composite-granularity admission
// ("granular") against the pre-admission design emulated by one global
// mutex around every mutation ("global"), over a mixed
// attach/set/set/detach workload on disjoint hierarchies. The global
// rows serialize both the engine work and each operation's WAL sync;
// the granular rows overlap them, sharing group-commit fsyncs.
func BenchmarkMixedWriters(b *testing.B) {
	for _, mode := range []string{"granular", "global"} {
		for _, workers := range []int{1, 4, 8, 16} {
			b.Run(fmt.Sprintf("%s-%d", mode, workers), func(b *testing.B) {
				d, roots, leaves := concurrentWriteDB(b, workers)
				defer d.Close()
				var mu sync.Mutex
				step := func(w, i int) error {
					switch i % 4 {
					case 0:
						return d.Attach(roots[w], "Subparts", leaves[w])
					case 1:
						return d.Set(roots[w], "Name", value.Str("r"))
					case 2:
						return d.Set(leaves[w], "Name", value.Str("l"))
					default:
						return d.Detach(roots[w], "Subparts", leaves[w])
					}
				}
				runWriters(b, d, workers, func(w, i int) error {
					if mode == "global" {
						mu.Lock()
						defer mu.Unlock()
					}
					return step(w, i)
				})
			})
		}
	}
}

// ---------------------------------------------------------------------
// MVCC snapshot reads: lock-free queries vs the RLock read path
// ---------------------------------------------------------------------

// BenchmarkSnapshotReadUnderWriters measures full-tree snapshot
// traversal latency while writer goroutines continuously churn node
// attributes. The snapshot path takes neither the engine latch nor §7
// locks, so the reported per-read time is what a reporting query costs
// regardless of write pressure.
func BenchmarkSnapshotReadUnderWriters(b *testing.B) {
	e := partEngine(b, true, true)
	root := buildTree(b, e, 6, 3)
	want := treeNodes(6, 3)
	kids, err := e.ComponentsOf(root, core.QueryOpts{Level: 1})
	if err != nil || len(kids) == 0 {
		b.Fatalf("children: %v, %v", kids, err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	const writers = 4
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := kids[(i*writers+w)%len(kids)]
				if err := e.Set(id, "Name", value.Str("churn")); err != nil {
					b.Error(err)
					return
				}
			}
		}(w)
	}
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		s := e.BeginSnapshot()
		got, err := s.ComponentsOf(root, core.QueryOpts{})
		s.Release()
		if err != nil || len(got) != want {
			b.Fatalf("components: %d, %v", len(got), err)
		}
	}
	elapsed := time.Since(start)
	b.StopTimer()
	close(stop)
	wg.Wait()
	b.ReportMetric(float64(elapsed.Nanoseconds())/float64(b.N), "snapshot-read-ns")
}

// BenchmarkLongScanWriterStall measures the p99 latency a single-object
// Set pays while a long full-tree scan runs continuously alongside it.
// The rlock scanner holds the engine's shared latch for the whole
// traversal, so every Set (exclusive latch) waits out the scan in
// progress; the snapshot scanner never touches the latch, so writer
// latency is just the mutation. The ratio of the two writer-stall-ns
// metrics is the §8-style reader/writer isolation win.
func BenchmarkLongScanWriterStall(b *testing.B) {
	for _, mode := range []string{"rlock", "snapshot"} {
		b.Run(mode, func(b *testing.B) {
			e := partEngine(b, true, true)
			root := buildTree(b, e, 7, 4)
			want := treeNodes(7, 4)
			leaf, err := e.New("Part", nil)
			if err != nil {
				b.Fatal(err)
			}
			stop := make(chan struct{})
			ready := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				first := true
				for {
					select {
					case <-stop:
						return
					default:
					}
					var got []uid.UID
					var err error
					if mode == "rlock" {
						got, err = e.ComponentsOf(root, core.QueryOpts{})
					} else {
						s := e.BeginSnapshot()
						got, err = s.ComponentsOf(root, core.QueryOpts{})
						s.Release()
					}
					if err != nil || len(got) != want {
						b.Errorf("scan: %d, %v", len(got), err)
						return
					}
					if first {
						close(ready)
						first = false
					}
				}
			}()
			// Don't start timing until the scanner is demonstrably
			// running — otherwise a small b.N finishes before the first
			// scan even acquires the latch and the baseline shows no
			// stall.
			<-ready
			lat := make([]time.Duration, 0, b.N)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t0 := time.Now()
				if err := e.Set(leaf.UID(), "Name", value.Str("w")); err != nil {
					b.Fatal(err)
				}
				lat = append(lat, time.Since(t0))
			}
			b.StopTimer()
			close(stop)
			wg.Wait()
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			idx := len(lat) * 99 / 100
			if idx >= len(lat) {
				idx = len(lat) - 1
			}
			b.ReportMetric(float64(lat[idx].Nanoseconds()), "writer-stall-ns")
		})
	}
}
