// Command promcheck validates Prometheus text exposition on stdin: every
// line must parse (metric name, labels, value), and with -require each
// comma-separated prefix must match at least one sample. CI scrapes the
// orion-shell /metrics endpoint and pipes it through this tool to assert
// the exposition stays well-formed and that the core, storage, lock, and
// txn families are all present.
//
//	curl -fs http://127.0.0.1:9464/metrics | promcheck -require core_,storage_,lock_,txn_
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/obs"
)

// check parses the exposition and verifies every required prefix has at
// least one sample, returning the sample count.
func check(r io.Reader, prefixes []string) (int, error) {
	samples, err := obs.ParseExposition(r)
	if err != nil {
		return 0, err
	}
	if len(samples) == 0 {
		return 0, fmt.Errorf("no samples")
	}
	for _, p := range prefixes {
		found := false
		for _, s := range samples {
			if strings.HasPrefix(s.Name, p) {
				found = true
				break
			}
		}
		if !found {
			return len(samples), fmt.Errorf("no sample with prefix %q", p)
		}
	}
	return len(samples), nil
}

func main() {
	require := flag.String("require", "", "comma-separated metric-name prefixes that must each match a sample")
	flag.Parse()
	var prefixes []string
	for _, p := range strings.Split(*require, ",") {
		if p = strings.TrimSpace(p); p != "" {
			prefixes = append(prefixes, p)
		}
	}
	n, err := check(os.Stdin, prefixes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "promcheck:", err)
		os.Exit(1)
	}
	fmt.Printf("promcheck: %d samples ok", n)
	if len(prefixes) > 0 {
		fmt.Printf(", prefixes %s present", strings.Join(prefixes, " "))
	}
	fmt.Println()
}
