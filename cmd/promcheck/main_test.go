package main

import (
	"strings"
	"testing"
)

func TestCheck(t *testing.T) {
	expo := strings.Join([]string{
		"# TYPE core_attach_total counter",
		"core_attach_total 3",
		"# TYPE lock_acquire_total counter",
		"lock_acquire_total 0",
		"core_delete_ns_bucket{le=\"1000\"} 1",
	}, "\n")
	n, err := check(strings.NewReader(expo), []string{"core_", "lock_"})
	if err != nil || n != 3 {
		t.Fatalf("check = %d, %v", n, err)
	}
	if _, err := check(strings.NewReader(expo), []string{"txn_"}); err == nil {
		t.Fatal("missing prefix not reported")
	}
	if _, err := check(strings.NewReader("not valid exposition !!"), nil); err == nil {
		t.Fatal("malformed exposition not reported")
	}
	if _, err := check(strings.NewReader(""), nil); err == nil {
		t.Fatal("empty exposition not reported")
	}
}
