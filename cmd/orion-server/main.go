// Command orion-server serves the composite-object database over TCP,
// speaking the same s-expression surface as orion-shell through the
// length-prefixed wire protocol of internal/server (DESIGN.md §14).
// Each connection is an independent session: its own (define) bindings,
// its own (begin)/(commit) transaction, its own (snapshot begin) MVCC
// read boundary.
//
// Flags:
//
//	-addr ADDR      TCP listen address (default 127.0.0.1:4707)
//	-db DIR         open (or create) a persistent database in DIR
//	-sync           fsync the WAL on commit (durable runs; default true with -db)
//	-max-conns N    admission limit; extra connections get a typed busy error
//	-max-frame N    request frame size limit in bytes
//	-write-timeout  per-reply write bound; slow readers are disconnected
//	-drain D        graceful-drain bound on SIGTERM/SIGINT
//	-metrics ADDR   HTTP surface: /metrics, /flight, /healthz, ...
//
// On SIGTERM or SIGINT the server drains: the listener closes, in-flight
// requests (commits included) finish and flush their replies, idle
// sessions' open transactions are aborted, and then the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/db"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:4707", "TCP listen address")
	dir := flag.String("db", "", "database directory (empty = in-memory)")
	sync := flag.Bool("sync", true, "fsync WAL on commit (only meaningful with -db)")
	maxConns := flag.Int("max-conns", 64, "connection admission limit")
	maxFrame := flag.Uint("max-frame", server.DefaultMaxFrame, "request frame size limit (bytes)")
	writeTimeout := flag.Duration("write-timeout", 10*time.Second, "per-reply write bound")
	drain := flag.Duration("drain", 5*time.Second, "graceful-drain bound on SIGTERM")
	metrics := flag.String("metrics", "", "address to serve /metrics and /healthz on (empty = off)")
	shards := flag.Int("shards", 0, "shard count (0 = manifest or 1; a -db dir remembers its count)")
	flag.Parse()

	d, err := db.Open(db.Options{Dir: *dir, SyncWAL: *sync && *dir != "", Shards: *shards})
	if err != nil {
		fmt.Fprintln(os.Stderr, "open:", err)
		os.Exit(1)
	}

	srv := server.New(d, server.Config{
		Addr:         *addr,
		MaxConns:     *maxConns,
		MaxFrame:     uint32(*maxFrame),
		WriteTimeout: *writeTimeout,
		DrainTimeout: *drain,
	})
	if err := srv.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "listen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "orion-server listening on %s\n", srv.Addr())

	if *metrics != "" {
		go func() {
			if err := http.ListenAndServe(*metrics, srv.HTTPHandler()); err != nil {
				fmt.Fprintln(os.Stderr, "metrics:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "metrics on http://%s/metrics\n", *metrics)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	<-sig
	fmt.Fprintln(os.Stderr, "draining...")
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "drain:", err)
	}
	if err := d.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "close:", err)
		os.Exit(1)
	}
}
