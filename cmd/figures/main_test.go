package main

import (
	"strings"
	"testing"
)

// Each figure function must produce the key artifacts; these tests keep
// the reproduction tool honest as the implementation evolves.

func TestFigure1Output(t *testing.T) {
	out := figure1()
	for _, want := range []string{
		"independent exclusive:",
		"rewritten to generic instance",
		"dependent reference set to Nil",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("figure1 missing %q\n%s", want, out)
		}
	}
}

func TestFigure2Output(t *testing.T) {
	out := figure2()
	if !strings.Contains(out, "rejected: true") {
		t.Errorf("figure2 must show the CV-2X rejection\n%s", out)
	}
}

func TestFigure3Output(t *testing.T) {
	out := figure3()
	for _, want := range []string{"(rc=2)", "(rc=1)", "(removed)", "parents-of"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure3 missing %q\n%s", want, out)
		}
	}
}

func TestFigure4Output(t *testing.T) {
	out := figure4()
	if strings.Count(out, "Read=true") != 5 {
		t.Errorf("figure4 must grant read on all five objects\n%s", out)
	}
	if !strings.Contains(out, "Read=false (outside") {
		t.Errorf("figure4 must deny outside the composite object\n%s", out)
	}
}

func TestFigure5Output(t *testing.T) {
	out := figure5()
	if !strings.Contains(out, "effective on o' = sW") {
		t.Errorf("figure5: sR+sW must resolve to sW\n%s", out)
	}
}

func TestFigure6Output(t *testing.T) {
	out := figure6()
	for _, want := range []string{"Conflict", "s¬R", "sW"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure6 missing %q", want)
		}
	}
}

func TestFigure7And8Output(t *testing.T) {
	f7, f8 := figure7(), figure8()
	if !strings.Contains(f7, "SIXO") || strings.Contains(f7, "SIXOS") {
		t.Errorf("figure7 mode set wrong\n%s", f7)
	}
	if !strings.Contains(f8, "SIXOS") {
		t.Errorf("figure8 missing shared modes\n%s", f8)
	}
}

func TestFigure9Output(t *testing.T) {
	out := figure9()
	for _, want := range []string{"GRANTED alongside 1", "BLOCKED", "true"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure9 missing %q\n%s", want, out)
		}
	}
}

func TestGarz88Output(t *testing.T) {
	out := garz88()
	if !strings.Contains(out, "undetected implicit conflicts: 1") {
		t.Errorf("garz88 must show exactly one undetected conflict\n%s", out)
	}
}
