// Command figures regenerates every figure of "Composite Objects
// Revisited" (Kim, Bertino, Garza; SIGMOD 1989) from the implementation,
// printing the computed artifact next to a summary of what the paper
// shows. Run with -fig N (1..9), -fig garz88, or -fig all.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/authz"
	"repro/internal/core"
	"repro/internal/lock"
	"repro/internal/schema"
	"repro/internal/uid"
	"repro/internal/value"
	"repro/internal/version"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 1..9, garz88, or all")
	flag.Parse()
	figs := map[string]func() string{
		"1":      figure1,
		"2":      figure2,
		"3":      figure3,
		"4":      figure4,
		"5":      figure5,
		"6":      figure6,
		"7":      figure7,
		"8":      figure8,
		"9":      figure9,
		"garz88": garz88,
	}
	if *fig == "all" {
		for _, k := range []string{"1", "2", "3", "4", "5", "6", "7", "8", "9", "garz88"} {
			fmt.Print(figs[k]())
			fmt.Println()
		}
		return
	}
	fn, ok := figs[*fig]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		os.Exit(2)
	}
	fmt.Print(fn())
}

func header(title string) string {
	bar := strings.Repeat("=", len(title))
	return fmt.Sprintf("%s\n%s\n", title, bar)
}

// cdSetup builds versionable classes C --A--> D with the given reference
// kind, as in §5.2.
func cdSetup(exclusive, dependent bool) (*core.Engine, *version.Manager) {
	cat := schema.NewCatalog()
	must(cat.DefineClass(schema.ClassDef{Name: "D", Versionable: true}))
	must(cat.DefineClass(schema.ClassDef{Name: "C", Versionable: true, Attributes: []schema.AttrSpec{
		schema.NewCompositeAttr("A", "D").WithExclusive(exclusive).WithDependent(dependent),
	}}))
	e := core.NewEngine(cat)
	return e, version.NewManager(e)
}

func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}

func figure1() string {
	var b strings.Builder
	b.WriteString(header("Figure 1 — Deriving a new version of a composite object"))
	b.WriteString("Paper: copying version instance c-i, which holds an exclusive\n" +
		"reference to version instance d-k, rewrites the new copy's reference\n" +
		"to the generic instance g-d (independent) or to Nil (dependent).\n\n")

	// Independent exclusive.
	e, m := cdSetup(true, false)
	gd, dk := must2(m.CreateVersionable("D", nil))
	_, ci := must2(m.CreateVersionable("C", nil))
	check(m.Attach(ci, "A", dk))
	cj := must(m.Derive(ci))
	ciObj := must(e.Get(ci))
	cjObj := must(e.Get(cj))
	fmt.Fprintf(&b, "independent exclusive:\n")
	fmt.Fprintf(&b, "  c-i.A = %s   (static reference to version instance d-k %s)\n", ciObj.Get("A"), dk)
	fmt.Fprintf(&b, "  c-j.A = %s   (rewritten to generic instance g-d %s)\n\n", cjObj.Get("A"), gd)

	// Dependent exclusive.
	e2, m2 := cdSetup(true, true)
	_, dk2 := must2(m2.CreateVersionable("D", nil))
	_, ci2 := must2(m2.CreateVersionable("C", nil))
	check(m2.Attach(ci2, "A", dk2))
	cj2 := must(m2.Derive(ci2))
	cj2Obj := must(e2.Get(cj2))
	fmt.Fprintf(&b, "dependent exclusive:\n")
	fmt.Fprintf(&b, "  c-j.A = %s   (dependent reference set to Nil)\n", cj2Obj.Get("A"))
	return b.String()
}

func must2(a, b uid.UID, err error) (uid.UID, uid.UID) {
	if err != nil {
		panic(err)
	}
	return a, b
}

func figure2() string {
	var b strings.Builder
	b.WriteString(header("Figure 2 — Versioned composite objects (rules CV-1X, CV-2X)"))
	b.WriteString("Paper: different version instances of g-c may hold exclusive\n" +
		"references to different version instances of g-d.\n\n")
	e, m := cdSetup(true, false)
	_, d0 := must2(m.CreateVersionable("D", nil))
	d1 := must(m.Derive(d0))
	_, c0 := must2(m.CreateVersionable("C", nil))
	c1 := must(m.Derive(c0))
	check(m.Attach(c0, "A", d0))
	// Derive rewrote c1.A to the generic; clear it, then bind to d1.
	c1Obj := must(e.Get(c1))
	if r, ok := c1Obj.Get("A").AsRef(); ok {
		check(m.Detach(c1, "A", r))
	}
	check(m.Attach(c1, "A", d1))
	fmt.Fprintf(&b, "  c.v0.A -> %s (d.v0)\n", must(e.Get(c0)).Get("A"))
	fmt.Fprintf(&b, "  c.v1.A -> %s (d.v1)\n", must(e.Get(c1)).Get("A"))
	// The forbidden case: a second exclusive reference to d0.
	c2 := must(m.Derive(c0))
	c2Obj := must(e.Get(c2))
	if r, ok := c2Obj.Get("A").AsRef(); ok {
		check(m.Detach(c2, "A", r))
	}
	err := m.Attach(c2, "A", d0)
	fmt.Fprintf(&b, "  c.v2.A -> d.v0 rejected: %v\n", err != nil)
	return b.String()
}

func figure3() string {
	var b strings.Builder
	b.WriteString(header("Figure 3 — Reverse composite generic references with ref-counts"))
	b.WriteString("Paper (3.b): a1.v0 -> b1.v0 and a1.v1 -> b1.v1 yield ONE reverse\n" +
		"composite generic reference b1 -> a1 with ref-count 2; removing the\n" +
		"version-level references decrements it and removes it at zero.\n\n")
	e, m := cdSetup(true, false)
	b1, b1v0 := must2(m.CreateVersionable("D", nil))
	b1v1 := must(m.Derive(b1v0))
	a1, a1v0 := must2(m.CreateVersionable("C", nil))
	a1v1 := must(m.Derive(a1v0))
	check(m.Attach(a1v0, "A", b1v0))
	check(m.Attach(a1v1, "A", b1v1))
	show := func(when string) {
		gObj := must(e.Get(b1))
		i := gObj.FindReverse(a1)
		if i < 0 {
			fmt.Fprintf(&b, "  %-28s generic entry b1->a1: (removed)\n", when)
			return
		}
		fmt.Fprintf(&b, "  %-28s generic entry b1->a1: %s\n", when, gObj.Reverse()[i])
	}
	show("after both references:")
	parents := must(e.ParentsOf(b1, core.QueryOpts{}))
	fmt.Fprintf(&b, "  (parents-of b1) = %v   (answers a1 though all refs are static)\n", parents)
	check(m.Detach(a1v0, "A", b1v0))
	show("after removing a1.v0->b1.v0:")
	check(m.Detach(a1v1, "A", b1v1))
	show("after removing a1.v1->b1.v1:")
	return b.String()
}

// figure45Graph builds the object graphs of Figures 4 and 5.
func figure45Graph() (*core.Engine, *authz.Store, map[string]uid.UID) {
	cat := schema.NewCatalog()
	must(cat.DefineClass(schema.ClassDef{Name: "Node", Attributes: []schema.AttrSpec{
		schema.NewCompositeSetAttr("Parts", "Node").WithExclusive(false).WithDependent(false),
	}}))
	e := core.NewEngine(cat)
	st := authz.NewStore(e)
	names := map[string]uid.UID{}
	mk := func(n string) uid.UID {
		o := must(e.New("Node", nil))
		names[n] = o.UID()
		return o.UID()
	}
	for _, n := range []string{"i", "k4", "m", "n", "o4", "j", "k", "o'", "p", "o", "q"} {
		mk(n)
	}
	link := func(p, c string) { check(e.Attach(names[p], "Parts", names[c])) }
	// Figure 4: i -> k4, m; m -> n; n -> o4.
	link("i", "k4")
	link("i", "m")
	link("m", "n")
	link("n", "o4")
	// Figure 5: j -> o', p; k -> o', o, q.
	link("j", "o'")
	link("j", "p")
	link("k", "o'")
	link("k", "o")
	link("k", "q")
	return e, st, names
}

func figure4() string {
	var b strings.Builder
	b.WriteString(header("Figure 4 — Composite object as a unit of authorization"))
	b.WriteString("Paper: a Read grant on the root Instance[i] implies Read on each\n" +
		"component Instance[k], [m], [n], [o].\n\n")
	_, st, names := figure45Graph()
	check(st.GrantObject("user", names["i"], authz.SR))
	for _, n := range []string{"i", "k4", "m", "n", "o4"} {
		ok := must(st.Check("user", names[n], authz.Read))
		okW := must(st.Check("user", names[n], authz.Write))
		fmt.Fprintf(&b, "  %-3s Read=%v Write=%v\n", strings.TrimSuffix(n, "4"), ok, okW)
	}
	out := must(st.Check("user", names["j"], authz.Read))
	fmt.Fprintf(&b, "  j   Read=%v (outside the composite object)\n", out)
	return b.String()
}

func figure5() string {
	var b strings.Builder
	b.WriteString(header("Figure 5 — A component shared by two composite objects"))
	b.WriteString("Paper: Instance[o'] is a component of the composite objects rooted\n" +
		"at Instance[j] and Instance[k]; grants on both imply authorizations\n" +
		"on o' that must be combined.\n\n")
	_, st, names := figure45Graph()
	check(st.GrantObject("user", names["j"], authz.SR))
	check(st.GrantObject("user", names["k"], authz.SW))
	res := must(st.Effective("user", names["o'"]))
	fmt.Fprintf(&b, "  grant sR on j, sW on k\n")
	fmt.Fprintf(&b, "  effective on o' = %s   (the paper: \"a strong W authorization,\n"+
		"  which in turn implies a strong R\")\n", res)
	for _, n := range []string{"p", "o", "q"} {
		r := must(st.Effective("user", names[n]))
		fmt.Fprintf(&b, "  effective on %-2s = %s\n", n, r)
	}
	return b.String()
}

func figure6() string {
	var b strings.Builder
	b.WriteString(header("Figure 6 — Implicit authorization on a shared component"))
	b.WriteString("Rows: grant on Instance[j]; columns: grant on Instance[k]; cell:\n" +
		"resulting authorization on Instance[o'] (computed from the\n" +
		"implication and override rules; 'Conflict' as in the paper).\n\n")
	b.WriteString(authz.FormatFigure6())
	return b.String()
}

func figure7() string {
	var b strings.Builder
	b.WriteString(header("Figure 7 — Compatibility: granularity + exclusive composite locking"))
	b.WriteString("Y = compatible. Derived from the claims model; matches the paper's\n" +
		"stated properties (IS∥IX, ISO×IX, IXO/SIXO×{IS,IX}).\n\n")
	b.WriteString(lock.FormatMatrix(lock.ExclusiveHierarchyModes))
	return b.String()
}

func figure8() string {
	var b strings.Builder
	b.WriteString(header("Figure 8 — Compatibility: + shared composite locking (ISOS/IXOS/SIXOS)"))
	b.WriteString("Y = compatible. Shared-regime writers exclude all other composite\n" +
		"users of the class; readers coexist across regimes (Topology Rule 3\n" +
		"makes the exclusive- and shared-component instance sets disjoint).\n\n")
	b.WriteString(lock.FormatMatrix(lock.Modes))
	return b.String()
}

func figure9() string {
	var b strings.Builder
	b.WriteString(header("Figure 9 — §7 locking protocol examples"))
	b.WriteString("Classes I, J, K over component classes C (exclusive from I, shared\n" +
		"from J and K) and W. Example 1 updates the composite object rooted\n" +
		"at i; example 2 reads the one rooted at k; example 3 updates the one\n" +
		"rooted at j.\n\n")
	cat := schema.NewCatalog()
	must(cat.DefineClass(schema.ClassDef{Name: "W"}))
	must(cat.DefineClass(schema.ClassDef{Name: "C", Attributes: []schema.AttrSpec{
		schema.NewCompositeSetAttr("Ws", "W").WithDependent(false),
	}}))
	must(cat.DefineClass(schema.ClassDef{Name: "I", Attributes: []schema.AttrSpec{
		schema.NewCompositeSetAttr("Cs", "C").WithDependent(false),
	}}))
	for _, n := range []string{"J", "K"} {
		must(cat.DefineClass(schema.ClassDef{Name: n, Attributes: []schema.AttrSpec{
			schema.NewCompositeSetAttr("Cs", "C").WithExclusive(false).WithDependent(false),
		}}))
	}
	e := core.NewEngine(cat)
	p := lock.NewProtocol(lock.NewManager(), e)
	w := must(e.New("W", nil))
	wp := must(e.New("W", nil))
	c := must(e.New("C", map[string]value.Value{"Ws": value.RefSet(w.UID())}))
	cp := must(e.New("C", map[string]value.Value{"Ws": value.RefSet(wp.UID())}))
	i := must(e.New("I", map[string]value.Value{"Cs": value.RefSet(c.UID())}))
	_ = must(e.New("J", map[string]value.Value{"Cs": value.RefSet(cp.UID())}))
	k := must(e.New("K", map[string]value.Value{"Cs": value.RefSet(cp.UID())}))

	check(p.LockCompositeWrite(1, i.UID()))
	fmt.Fprintf(&b, "example 1 (update CO rooted at i):  I:IX  i:X  C:IXO  W:IXO\n")
	check(p.LockCompositeRead(2, k.UID()))
	fmt.Fprintf(&b, "example 2 (read CO rooted at k):    K:IS  k:S  C:ISOS W:ISO   -> GRANTED alongside 1\n")
	blocked := !p.M.TryLock(3, lock.ClassGranule("C"), lock.IXOS)
	fmt.Fprintf(&b, "example 3 (update CO rooted at j):  J:IX  j:X  C:IXOS W:IXO  -> BLOCKED (C IXOS vs IXO/ISOS): %v\n", blocked)
	return b.String()
}

func garz88() string {
	var b strings.Builder
	b.WriteString(header("GARZ88 root-locking anomaly under shared references (§7)"))
	b.WriteString("T1 S-locks Instance[o'] via its roots {j,k}; T2 X-locks Instance[o]\n" +
		"(a root). Both are granted, yet their implicit locks conflict on q —\n" +
		"which is why the root-locking algorithm cannot be used with shared\n" +
		"composite references.\n\n")
	cat := schema.NewCatalog()
	must(cat.DefineClass(schema.ClassDef{Name: "Leaf"}))
	must(cat.DefineClass(schema.ClassDef{Name: "Root", Attributes: []schema.AttrSpec{
		schema.NewCompositeSetAttr("Kids", "Leaf").WithExclusive(false).WithDependent(false),
	}}))
	e := core.NewEngine(cat)
	p := lock.NewProtocol(lock.NewManager(), e)
	op := must(e.New("Leaf", nil))
	q := must(e.New("Leaf", nil))
	j := must(e.New("Root", nil))
	k := must(e.New("Root", nil))
	o := must(e.New("Root", nil))
	for _, pair := range [][2]uid.UID{{j.UID(), op.UID()}, {k.UID(), op.UID()}, {k.UID(), q.UID()}, {o.UID(), q.UID()}} {
		check(e.Attach(pair[0], "Kids", pair[1]))
	}
	check(p.LockViaRoots(1, op.UID(), false))
	fmt.Fprintf(&b, "  T1: S on roots(o') = {j %v, k %v}  GRANTED\n", j.UID(), k.UID())
	check(p.LockViaRoots(2, o.UID(), true))
	fmt.Fprintf(&b, "  T2: X on roots(o)  = {o %v}        GRANTED\n", o.UID())
	conflicts := must(p.ImplicitConflicts([]lock.TxID{1, 2}))
	var lines []string
	for _, pair := range conflicts {
		lines = append(lines, fmt.Sprintf("    %v: T%d holds implicit %s via %v, T%d holds implicit %s via %v",
			pair[0].Obj, pair[0].Tx, pair[0].Mode, pair[0].Root, pair[1].Tx, pair[1].Mode, pair[1].Root))
	}
	sort.Strings(lines)
	fmt.Fprintf(&b, "  undetected implicit conflicts: %d\n%s\n", len(conflicts), strings.Join(lines, "\n"))
	return b.String()
}
