package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkComponentsOfParallel-8   \t 100\t  88589654 ns/op\t 0.9500 plan-hit-rate")
	if !ok {
		t.Fatal("result line not recognized")
	}
	if r.Name != "BenchmarkComponentsOfParallel" || r.Procs != 8 || r.N != 100 {
		t.Fatalf("parsed %+v", r)
	}
	if r.NsPerOp != 88589654 || r.Metrics["plan-hit-rate"] != 0.95 {
		t.Fatalf("parsed %+v", r)
	}
	// Sub-benchmark names keep their path; the -N suffix still strips.
	r, ok = parseLine("BenchmarkComponentsOfDepth/depth=8-4 1000 123.5 ns/op 16 B/op 2 allocs/op")
	if !ok || r.Name != "BenchmarkComponentsOfDepth/depth=8" || r.Procs != 4 {
		t.Fatalf("parsed %+v, ok=%v", r, ok)
	}
	if r.Metrics["B/op"] != 16 || r.Metrics["allocs/op"] != 2 {
		t.Fatalf("parsed %+v", r)
	}
	// Registry-sourced units are promoted to typed fields, zero included.
	r, ok = parseLine("BenchmarkAncestorsOfCached-4 500 987 ns/op 0.8800 cache-hit-rate 0 pool-evictions")
	if !ok {
		t.Fatal("result line not recognized")
	}
	if r.CacheHitRate == nil || *r.CacheHitRate != 0.88 {
		t.Fatalf("cache hit rate not promoted: %+v", r)
	}
	if r.PoolEvictions == nil || *r.PoolEvictions != 0 {
		t.Fatalf("pool evictions not promoted: %+v", r)
	}
	if _, ok := r.Metrics["cache-hit-rate"]; ok {
		t.Fatalf("promoted unit still in Metrics: %+v", r)
	}
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"pool_evictions":0`) {
		t.Fatalf("zero pool_evictions dropped from JSON: %s", b)
	}
	// MVCC reader/writer isolation metrics are promoted too.
	r, ok = parseLine("BenchmarkLongScanWriterStall/snapshot-8 30 8559 ns/op 135978 writer-stall-ns")
	if !ok || r.WriterStallNs == nil || *r.WriterStallNs != 135978 {
		t.Fatalf("writer stall not promoted: %+v, ok=%v", r, ok)
	}
	r, ok = parseLine("BenchmarkSnapshotReadUnderWriters-8 50 1508553 ns/op 1508541 snapshot-read-ns")
	if !ok || r.SnapshotReadNs == nil || *r.SnapshotReadNs != 1508541 {
		t.Fatalf("snapshot read ns not promoted: %+v, ok=%v", r, ok)
	}
	if _, ok := r.Metrics["snapshot-read-ns"]; ok {
		t.Fatalf("promoted unit still in Metrics: %+v", r)
	}
	// Profiling cost metrics promote too; overhead may be negative noise.
	r, ok = parseLine("BenchmarkProfiledTraversal-8 100 380125 ns/op 145.6 flight-record-ns 3.2 profile-overhead-pct")
	if !ok || r.ProfileOverheadPct == nil || *r.ProfileOverheadPct != 3.2 {
		t.Fatalf("profile overhead not promoted: %+v, ok=%v", r, ok)
	}
	if r.FlightRecordNs == nil || *r.FlightRecordNs != 145.6 {
		t.Fatalf("flight record ns not promoted: %+v", r)
	}
	// Clustering bake-off metrics promote too.
	r, ok = parseLine("BenchmarkColdTraversalPlacement/creation=interleaved/policy=usage-4 100 3265 ns/op 0.9900 pages/traversal 64.00 recluster-migrations")
	if !ok || r.PagesPerTraversal == nil || *r.PagesPerTraversal != 0.99 {
		t.Fatalf("pages/traversal not promoted: %+v, ok=%v", r, ok)
	}
	if r.ReclusterMigs == nil || *r.ReclusterMigs != 64 {
		t.Fatalf("recluster migrations not promoted: %+v", r)
	}
	for _, bad := range []string{
		"goos: linux",
		"PASS",
		"ok  \trepro\t5.678s",
		"BenchmarkBroken notanumber 12 ns/op",
		"--- BENCH: BenchmarkX",
	} {
		if _, ok := parseLine(bad); ok {
			t.Errorf("%q parsed as a result", bad)
		}
	}
}

func TestRunPassthrough(t *testing.T) {
	in := strings.Join([]string{
		"goos: linux",
		"BenchmarkA-2 50 200 ns/op",
		"PASS",
		"",
	}, "\n")
	var out, passthru bytes.Buffer
	if err := run(strings.NewReader(in), &out, &passthru); err != nil {
		t.Fatal(err)
	}
	var results []Result
	if err := json.Unmarshal(out.Bytes(), &results); err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Name != "BenchmarkA" || results[0].Procs != 2 {
		t.Fatalf("results = %+v", results)
	}
	if got := passthru.String(); !strings.Contains(got, "goos: linux") || !strings.Contains(got, "PASS") {
		t.Fatalf("passthru = %q", got)
	}
}
