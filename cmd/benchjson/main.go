// Command benchjson converts `go test -bench` text output on stdin into a
// JSON array on stdout, one element per benchmark result line. Non-result
// lines (goos/pkg headers, PASS/ok trailers, test logs) pass through to
// stderr so piping the bench run through this tool loses nothing:
//
//	go test -bench . -benchtime 100x . | go run ./cmd/benchjson > bench.json
//
// Each result captures the benchmark name, the GOMAXPROCS suffix (-N), the
// iteration count, ns/op, and any extra metrics (B/op, allocs/op, and
// custom b.ReportMetric units like plan-hit-rate).
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line. The cache hit rate, buffer-pool
// eviction count, fsyncs-per-commit ratio, the MVCC reader/writer
// isolation metrics (snapshot read latency, writer p99 stall), the
// profiling costs (profile overhead percentage, flight-recorder append
// latency), and the clustering bake-off numbers (pages per cold
// traversal, reclusterer migration count) — reported by the benches from
// the observability registry snapshot — are promoted to typed fields
// (pointers, so a true zero survives omitempty); any other custom units
// land in Metrics.
type Result struct {
	Name               string             `json:"name"`
	Procs              int                `json:"procs"`
	N                  int64              `json:"n"`
	NsPerOp            float64            `json:"ns_per_op"`
	CacheHitRate       *float64           `json:"cache_hit_rate,omitempty"`
	PoolEvictions      *float64           `json:"pool_evictions,omitempty"`
	FsyncsPerCommit    *float64           `json:"fsyncs_per_commit,omitempty"`
	SnapshotReadNs     *float64           `json:"snapshot_read_ns,omitempty"`
	WriterStallNs      *float64           `json:"writer_stall_ns,omitempty"`
	ProfileOverheadPct *float64           `json:"profile_overhead_pct,omitempty"`
	FlightRecordNs     *float64           `json:"flight_record_ns,omitempty"`
	PagesPerTraversal  *float64           `json:"pages_per_traversal,omitempty"`
	ReclusterMigs      *float64           `json:"recluster_migrations,omitempty"`
	Metrics            map[string]float64 `json:"metrics,omitempty"`
}

// parseLine parses a single `go test -bench` result line, e.g.
//
//	BenchmarkComponentsOfDepth/depth=8-4   1000   123456 ns/op   0.95 plan-hit-rate
//
// and reports ok=false for anything that is not a result line.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	r := Result{Name: fields[0], Procs: 1}
	if i := strings.LastIndex(r.Name, "-"); i >= 0 {
		if p, err := strconv.Atoi(r.Name[i+1:]); err == nil && p > 0 {
			r.Procs = p
			r.Name = r.Name[:i]
		}
	}
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r.N = n
	// The remainder alternates value/unit pairs.
	sawNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		unit := fields[i+1]
		switch unit {
		case "ns/op":
			r.NsPerOp = v
			sawNs = true
			continue
		case "cache-hit-rate":
			hr := v
			r.CacheHitRate = &hr
			continue
		case "pool-evictions":
			ev := v
			r.PoolEvictions = &ev
			continue
		case "fsyncs/commit":
			fc := v
			r.FsyncsPerCommit = &fc
			continue
		case "snapshot-read-ns":
			sr := v
			r.SnapshotReadNs = &sr
			continue
		case "writer-stall-ns":
			ws := v
			r.WriterStallNs = &ws
			continue
		case "profile-overhead-pct":
			po := v
			r.ProfileOverheadPct = &po
			continue
		case "flight-record-ns":
			fr := v
			r.FlightRecordNs = &fr
			continue
		case "pages/traversal":
			pt := v
			r.PagesPerTraversal = &pt
			continue
		case "recluster-migrations":
			rm := v
			r.ReclusterMigs = &rm
			continue
		}
		if r.Metrics == nil {
			r.Metrics = make(map[string]float64)
		}
		r.Metrics[unit] = v
	}
	if !sawNs {
		return Result{}, false
	}
	return r, true
}

// run filters in to out, parsing result lines and echoing the rest to
// passthru.
func run(in io.Reader, out, passthru io.Writer) error {
	results := []Result{} // marshal as [] rather than null when no lines match
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if r, ok := parseLine(line); ok {
			results = append(results, r)
			continue
		}
		fmt.Fprintln(passthru, line)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

func main() {
	if err := run(os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
