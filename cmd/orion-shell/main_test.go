package main

import (
	"strings"
	"testing"

	"repro/internal/db"
)

func TestBalanced(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"", true},
		{"(a b)", true},
		{"(a (b c))", true},
		{"(a (b c)", false},
		{"(a))", true}, // over-closed still submits (the evaluator errors)
		{`(a "(((" b)`, true},
		{`(a "unclosed`, false},
		{"(a ; comment with ( paren\n)", true},
		{"; just a comment (", true},
		{`(s "esc \" quote")`, true},
		{"(multi\nline\n(ok))", true},
	}
	for _, c := range cases {
		if got := balanced(c.src); got != c.want {
			t.Errorf("balanced(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestMetaCommands(t *testing.T) {
	d, err := db.Open(db.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	if _, handled := metaCommand(d, "(make-class 'C)"); handled {
		t.Fatal("s-expression treated as a meta-command")
	}
	if out, handled := metaCommand(d, "trace on"); !handled || out != "tracing on" {
		t.Fatalf("trace on: %q, %v", out, handled)
	}
	if !d.Observability().Tracer().Active() {
		t.Fatal("tracer not activated")
	}

	// A traced transaction shows up in both the dump and the stats.
	tx := d.Txns().Begin()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	out, handled := metaCommand(d, "trace dump")
	if !handled || !strings.Contains(out, "txn.begin") || !strings.Contains(out, "txn.commit") {
		t.Fatalf("trace dump: %q", out)
	}
	if out, _ := metaCommand(d, "trace off"); out != "tracing off" {
		t.Fatalf("trace off: %q", out)
	}
	if d.Observability().Tracer().Active() {
		t.Fatal("tracer still active")
	}
	if out, _ := metaCommand(d, "trace clear"); out != "trace cleared" {
		t.Fatalf("trace clear: %q", out)
	}
	if out, _ := metaCommand(d, "trace dump"); out != "trace: no events" {
		t.Fatalf("dump after clear: %q", out)
	}
	if out, _ := metaCommand(d, "trace sideways"); !strings.HasPrefix(out, "usage:") {
		t.Fatalf("bad subcommand: %q", out)
	}

	if out, handled := metaCommand(d, "stats"); !handled || !strings.Contains(out, "txn_commit_total 1") {
		t.Fatalf("stats: %q", out)
	}

	if out, _ := metaCommand(d, "slow 1ns"); !strings.Contains(out, "threshold 1ns") {
		t.Fatalf("slow 1ns: %q", out)
	}
	if out, _ := metaCommand(d, "slow off"); out != "slow log off" {
		t.Fatalf("slow off: %q", out)
	}
	if out, _ := metaCommand(d, "slow dump"); out != "slow: no entries" {
		t.Fatalf("slow dump: %q", out)
	}
	if out, _ := metaCommand(d, "slow nonsense"); !strings.HasPrefix(out, "usage:") {
		t.Fatalf("bad slow arg: %q", out)
	}
}
