package main

import "testing"

func TestBalanced(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"", true},
		{"(a b)", true},
		{"(a (b c))", true},
		{"(a (b c)", false},
		{"(a))", true}, // over-closed still submits (the evaluator errors)
		{`(a "(((" b)`, true},
		{`(a "unclosed`, false},
		{"(a ; comment with ( paren\n)", true},
		{"; just a comment (", true},
		{`(s "esc \" quote")`, true},
		{"(multi\nline\n(ok))", true},
	}
	for _, c := range cases {
		if got := balanced(c.src); got != c.want {
			t.Errorf("balanced(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}
