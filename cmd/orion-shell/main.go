// Command orion-shell is an interactive REPL over the composite-object
// database, speaking the paper's ORION-flavored s-expression language:
//
//	$ orion-shell
//	orion> (make-class 'Vehicle :attributes '((Body :domain AutoBody :composite true)))
//	orion> (define v (make Vehicle))
//	orion> (components-of v)
//
// Flags:
//
//	-db DIR   open (or create) a persistent database in DIR
//	-e EXPR   evaluate EXPR and exit
//	-f FILE   evaluate the file (then drop into the REPL unless -e/-q)
//	-q        quit after -f/-e instead of starting the REPL
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/db"
	"repro/internal/sexpr"
)

func main() {
	dir := flag.String("db", "", "database directory (empty = in-memory)")
	expr := flag.String("e", "", "expression to evaluate")
	file := flag.String("f", "", "file to load")
	quit := flag.Bool("q", false, "exit after -e/-f")
	flag.Parse()

	d, err := db.Open(db.Options{Dir: *dir})
	if err != nil {
		fmt.Fprintln(os.Stderr, "open:", err)
		os.Exit(1)
	}
	defer d.Close()
	in := sexpr.NewInterp(d)

	if *file != "" {
		src, err := os.ReadFile(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		v, err := in.EvalString(string(src))
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Println(v)
	}
	if *expr != "" {
		v, err := in.EvalString(*expr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Println(v)
	}
	if *quit || *expr != "" {
		return
	}

	fmt.Println("ORION-style composite object shell — (make-class ...), (make ...), (components-of ...), ctrl-D to exit")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var pending strings.Builder
	prompt := "orion> "
	for {
		fmt.Print(prompt)
		if !sc.Scan() {
			fmt.Println()
			return
		}
		pending.WriteString(sc.Text())
		pending.WriteString("\n")
		src := pending.String()
		if !balanced(src) {
			prompt = "  ...> "
			continue
		}
		pending.Reset()
		prompt = "orion> "
		if strings.TrimSpace(src) == "" {
			continue
		}
		v, err := in.EvalString(src)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		fmt.Println(v)
	}
}

// balanced reports whether every '(' has been closed (ignoring strings
// and comments), so multi-line input works.
func balanced(src string) bool {
	depth := 0
	inStr := false
	inComment := false
	esc := false
	for _, r := range src {
		switch {
		case inComment:
			if r == '\n' {
				inComment = false
			}
		case inStr:
			if esc {
				esc = false
			} else if r == '\\' {
				esc = true
			} else if r == '"' {
				inStr = false
			}
		case r == '"':
			inStr = true
		case r == ';':
			inComment = true
		case r == '(':
			depth++
		case r == ')':
			depth--
		}
	}
	return depth <= 0 && !inStr
}
