// Command orion-shell is an interactive REPL over the composite-object
// database, speaking the paper's ORION-flavored s-expression language:
//
//	$ orion-shell
//	orion> (make-class 'Vehicle :attributes '((Body :domain AutoBody :composite true)))
//	orion> (define v (make Vehicle))
//	orion> (components-of v)
//
// Flags:
//
//	-db DIR         open (or create) a persistent database in DIR
//	-e EXPR         evaluate EXPR and exit
//	-f FILE         evaluate the file (then drop into the REPL unless -e/-q)
//	-q              quit after -f/-e instead of starting the REPL
//	-metrics ADDR   serve /metrics, /metrics.json, /trace, /slow on ADDR
//	-placement P    clustering policy: first-parent (default), class, usage
//	-recluster DUR  run the background reclusterer on this interval
//
// Besides s-expressions the REPL accepts meta-commands: `stats` prints
// the metrics snapshot, `trace on|off|dump|clear` controls operation
// tracing, `slow DUR|dump|off` controls the slow-operation log, and
// `flight dump|clear` reads the always-on black-box flight recorder
// (also served at /flight under -metrics). The s-expression surface
// adds (explain expr) for static query plans, (profile expr) for an
// executed cost breakdown, and (flight dump|clear|status).
//
// (snapshot begin) pins a read-only MVCC snapshot: queries then answer
// from the pinned commit boundary — immune to concurrent writers and
// free of lock acquisitions — until (snapshot release); (snapshot
// status) shows the pinned sequence number.
//
// (placement) names the active clustering policy; (recluster status)
// reports the online reclusterer's counters and (recluster now) runs
// one migration pass by hand.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/db"
	"repro/internal/sexpr"
)

func main() {
	dir := flag.String("db", "", "database directory (empty = in-memory)")
	expr := flag.String("e", "", "expression to evaluate")
	file := flag.String("f", "", "file to load")
	quit := flag.Bool("q", false, "exit after -e/-f")
	metrics := flag.String("metrics", "", "address to serve /metrics on (empty = off)")
	placement := flag.String("placement", "", "clustering policy: first-parent, class, usage")
	recluster := flag.Duration("recluster", 0, "background recluster interval (0 = off)")
	shards := flag.Int("shards", 0, "shard count (0 = manifest or 1; a -db dir remembers its count)")
	flag.Parse()

	d, err := db.Open(db.Options{Dir: *dir, Placement: *placement, ReclusterInterval: *recluster, Shards: *shards})
	if err != nil {
		fmt.Fprintln(os.Stderr, "open:", err)
		os.Exit(1)
	}
	defer d.Close()
	in := sexpr.NewInterp(d)

	if *metrics != "" {
		go func() {
			if err := http.ListenAndServe(*metrics, d.Observability().Handler()); err != nil {
				fmt.Fprintln(os.Stderr, "metrics:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "metrics on http://%s/metrics\n", *metrics)
	}

	if *file != "" {
		src, err := os.ReadFile(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		v, err := in.EvalString(string(src))
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Println(v)
	}
	if *expr != "" {
		v, err := in.EvalString(*expr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Println(v)
	}
	if *quit || *expr != "" {
		return
	}

	fmt.Println("ORION-style composite object shell — (make-class ...), (make ...), (components-of ...), ctrl-D to exit")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var pending strings.Builder
	prompt := "orion> "
	for {
		fmt.Print(prompt)
		if !sc.Scan() {
			fmt.Println()
			return
		}
		pending.WriteString(sc.Text())
		pending.WriteString("\n")
		src := pending.String()
		if !balanced(src) {
			prompt = "  ...> "
			continue
		}
		pending.Reset()
		prompt = "orion> "
		if strings.TrimSpace(src) == "" {
			continue
		}
		if out, handled := metaCommand(d, src); handled {
			if out != "" {
				fmt.Println(out)
			}
			continue
		}
		v, err := in.EvalString(src)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		fmt.Println(v)
	}
}

// metaCommand handles the shell's non-s-expression commands against the
// database's observability registry. It returns the text to print and
// whether the line was a meta-command at all (unhandled lines fall
// through to the s-expression evaluator).
func metaCommand(d *db.DB, line string) (string, bool) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "", false
	}
	reg := d.Observability()
	switch fields[0] {
	case "stats":
		return statsText(d), true
	case "trace":
		if len(fields) == 2 {
			switch fields[1] {
			case "on":
				reg.Tracer().SetActive(true)
				return "tracing on", true
			case "off":
				reg.Tracer().SetActive(false)
				return "tracing off", true
			case "dump":
				evs := reg.Tracer().Events()
				if len(evs) == 0 {
					return "trace: no events", true
				}
				var b strings.Builder
				for i, ev := range evs {
					if i > 0 {
						b.WriteByte('\n')
					}
					b.WriteString(ev.String())
				}
				return b.String(), true
			case "clear":
				reg.Tracer().Clear()
				return "trace cleared", true
			}
		}
		return "usage: trace on|off|dump|clear", true
	case "slow":
		if len(fields) == 2 {
			switch fields[1] {
			case "off":
				reg.Slow().SetThreshold(0)
				return "slow log off", true
			case "dump":
				entries := reg.Slow().Entries()
				if len(entries) == 0 {
					return "slow: no entries", true
				}
				var b strings.Builder
				for i, e := range entries {
					if i > 0 {
						b.WriteByte('\n')
					}
					fmt.Fprintf(&b, "%s %s %s", e.Op, e.Dur, e.Detail)
				}
				return b.String(), true
			default:
				dur, err := time.ParseDuration(fields[1])
				if err == nil && dur > 0 {
					reg.Slow().SetThreshold(dur)
					return fmt.Sprintf("slow log on, threshold %s", dur), true
				}
			}
		}
		return "usage: slow DURATION|dump|off", true
	case "flight":
		if len(fields) == 2 {
			switch fields[1] {
			case "dump":
				recs := reg.Flight().Records()
				if len(recs) == 0 {
					return "flight: no records", true
				}
				var b strings.Builder
				for i, r := range recs {
					if i > 0 {
						b.WriteByte('\n')
					}
					b.WriteString(r.String())
				}
				return b.String(), true
			case "clear":
				reg.Flight().Clear()
				return "flight recorder cleared", true
			}
		}
		return "usage: flight dump|clear", true
	}
	return "", false
}

// statsText renders the registry snapshot for the REPL: non-zero
// counters and gauges sorted by name, histograms as count and mean.
func statsText(d *db.DB) string {
	snap := d.Observability().Snapshot()
	var lines []string
	for n, v := range snap.Counters {
		if v != 0 {
			lines = append(lines, fmt.Sprintf("%s %d", n, v))
		}
	}
	for n, v := range snap.Gauges {
		if v != 0 {
			lines = append(lines, fmt.Sprintf("%s %d", n, v))
		}
	}
	for n, h := range snap.Histograms {
		if h.Count != 0 {
			lines = append(lines, fmt.Sprintf("%s count=%d mean=%s", n, h.Count,
				time.Duration(h.Sum/int64(h.Count))))
		}
	}
	if len(lines) == 0 {
		return "stats: all zero"
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// balanced reports whether every '(' has been closed (ignoring strings
// and comments), so multi-line input works.
func balanced(src string) bool {
	depth := 0
	inStr := false
	inComment := false
	esc := false
	for _, r := range src {
		switch {
		case inComment:
			if r == '\n' {
				inComment = false
			}
		case inStr:
			if esc {
				esc = false
			} else if r == '\\' {
				esc = true
			} else if r == '"' {
				inStr = false
			}
		case r == '"':
			inStr = true
		case r == ';':
			inComment = true
		case r == '(':
			depth++
		case r == ')':
			depth--
		}
	}
	return depth <= 0 && !inStr
}
