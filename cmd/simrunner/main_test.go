package main

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestRunCleanSeeds(t *testing.T) {
	o, err := parseFlags([]string{"-seed", "1", "-seeds", "2", "-ops", "150"})
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	fail, err := run(o, &out)
	if err != nil {
		t.Fatal(err)
	}
	if fail != nil {
		t.Fatal(fail.Report())
	}
	if got := out.String(); !strings.Contains(got, "seed=1 ops=150 ok") || !strings.Contains(got, "seed=2 ops=150 ok") {
		t.Fatalf("missing per-seed summary lines:\n%s", got)
	}
}

func TestRunReplayTraceFile(t *testing.T) {
	ops := sim.Generate(rand.New(rand.NewSource(3)), sim.GenConfig{Ops: 120})
	path := filepath.Join(t.TempDir(), "saved.trace")
	if err := os.WriteFile(path, []byte(sim.FormatTrace(ops)), 0o644); err != nil {
		t.Fatal(err)
	}
	o, err := parseFlags([]string{"-replay", path, "-seed", "3"})
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	fail, err := run(o, &out)
	if err != nil {
		t.Fatal(err)
	}
	if fail != nil {
		t.Fatal(fail.Report())
	}
	if !strings.Contains(out.String(), "replaying") {
		t.Fatalf("missing replay banner:\n%s", out.String())
	}
}

func TestRunConcurrentWithReaders(t *testing.T) {
	o, err := parseFlags([]string{"-workers", "2", "-readers", "2", "-ops", "80"})
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	fail, err := run(o, &out)
	if err != nil {
		t.Fatal(err)
	}
	if fail != nil {
		t.Fatal(fail.Report())
	}
	if got := out.String(); !strings.Contains(got, "readers=2") || !strings.Contains(got, "snapshot-reads=") {
		t.Fatalf("missing reader summary fields:\n%s", got)
	}
}

func TestReadersRequireWorkers(t *testing.T) {
	if _, err := parseFlags([]string{"-readers", "2"}); err == nil {
		t.Fatal("-readers without -workers should be rejected")
	}
}

func TestRunNetMode(t *testing.T) {
	o, err := parseFlags([]string{"-net", "-workers", "2", "-ops", "60"})
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	fail, err := run(o, &out)
	if err != nil {
		t.Fatal(err)
	}
	if fail != nil {
		t.Fatal(fail.Report())
	}
	if got := out.String(); !strings.Contains(got, "mode=net") || !strings.Contains(got, "committed=") {
		t.Fatalf("missing net summary fields:\n%s", got)
	}
}

func TestNetRequiresWorkers(t *testing.T) {
	if _, err := parseFlags([]string{"-net"}); err == nil {
		t.Fatal("-net without -workers should be rejected")
	}
}

func TestCrashImpliesDurable(t *testing.T) {
	o, err := parseFlags([]string{"-crash"})
	if err != nil {
		t.Fatal(err)
	}
	if !o.durable {
		t.Fatal("-crash should imply -durable")
	}
}
