// Command simrunner drives the model-based simulation harness
// (internal/sim) outside of `go test`, for soak runs over many seeds
// and for replaying saved failure traces:
//
//	go run ./cmd/simrunner -seed 1 -ops 5000
//	go run ./cmd/simrunner -seeds 100 -ops 2000 -evolution -durable -crash
//	go run ./cmd/simrunner -replay failure.trace -seed 1
//	go run ./cmd/simrunner -net -workers 8 -ops 500 -durable
//	go run ./cmd/simrunner -workers 4 -recluster -ops 1000 -durable
//	go run ./cmd/simrunner -shards 4 -workers 8 -ops 1000 -durable
//
// On failure it prints the seed, the failing step and op, and the
// minimized trace (replayable with -replay), then exits 1. On success
// it prints one summary line per seed.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/sim"
)

type options struct {
	seed       int64
	seeds      int
	ops        int
	dir        string
	durable    bool
	evolution  bool
	checkpoint bool
	crash      bool
	replay     string
	workers    int
	readers    int
	net        bool
	recluster  bool
	shards     int
}

func parseFlags(args []string) (options, error) {
	var o options
	fs := flag.NewFlagSet("simrunner", flag.ContinueOnError)
	fs.Int64Var(&o.seed, "seed", 1, "first workload seed")
	fs.IntVar(&o.seeds, "seeds", 1, "number of consecutive seeds to run")
	fs.IntVar(&o.ops, "ops", 1000, "ops per workload")
	fs.StringVar(&o.dir, "dir", "", "database directory for durable runs (default: per-seed temp dir)")
	fs.BoolVar(&o.durable, "durable", false, "run against an on-disk database with WAL recovery")
	fs.BoolVar(&o.evolution, "evolution", false, "include schema-evolution ops")
	fs.BoolVar(&o.checkpoint, "checkpoint", false, "include checkpoint ops (durable only)")
	fs.BoolVar(&o.crash, "crash", false, "include crash/recovery ops (implies -durable)")
	fs.StringVar(&o.replay, "replay", "", "replay a saved trace file instead of generating a workload")
	fs.IntVar(&o.workers, "workers", 0, "run the concurrent harness with this many writer goroutines (0 = sequential)")
	fs.IntVar(&o.readers, "readers", 0, "add this many snapshot-reader goroutines to the concurrent harness (requires -workers)")
	fs.BoolVar(&o.net, "net", false, "drive the concurrent harness through TCP clients against an in-process server (requires -workers)")
	fs.BoolVar(&o.recluster, "recluster", false, "run the background reclusterer under the concurrent harness (requires -workers)")
	fs.IntVar(&o.shards, "shards", 0, "partition the store into this many composite-unit shards (0/1 = single shard)")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	if o.crash {
		o.durable = true
	}
	if o.readers > 0 && o.workers == 0 {
		return o, fmt.Errorf("-readers requires -workers")
	}
	if o.net && o.workers == 0 {
		return o, fmt.Errorf("-net requires -workers")
	}
	if o.recluster && o.workers == 0 {
		return o, fmt.Errorf("-recluster requires -workers")
	}
	return o, nil
}

func (o options) config(seed int64) sim.Config {
	return sim.Config{
		Seed:       seed,
		Ops:        o.ops,
		Durable:    o.durable,
		Dir:        o.dir,
		Evolution:  o.evolution,
		Checkpoint: o.checkpoint,
		Crash:      o.crash,
		Shards:     o.shards,
	}
}

// run executes the requested workloads and writes progress to out.
// It returns the first failure, or nil when every seed passed.
func run(o options, out io.Writer) (*sim.Failure, error) {
	if o.replay != "" {
		f, err := os.Open(o.replay)
		if err != nil {
			return nil, err
		}
		ops, err := sim.ParseTrace(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", o.replay, err)
		}
		fmt.Fprintf(out, "replaying %s (%d ops, seed=%d)\n", o.replay, len(ops), o.seed)
		return sim.RunTrace(o.config(o.seed), ops), nil
	}
	for i := 0; i < o.seeds; i++ {
		seed := o.seed + int64(i)
		if o.workers > 0 {
			res := sim.RunConcurrent(sim.ConcurrentConfig{
				Seed:      seed,
				Workers:   o.workers,
				Readers:   o.readers,
				Ops:       o.ops,
				Durable:   o.durable,
				Dir:       o.dir,
				Net:       o.net,
				Recluster: o.recluster,
				Shards:    o.shards,
			})
			if res.Failure != nil {
				return res.Failure, nil
			}
			mode := "embedded"
			if o.net {
				mode = "net"
			}
			fmt.Fprintf(out, "seed=%d mode=%s workers=%d readers=%d shards=%d ops=%d committed=%d aborted=%d deadlock-retries=%d snapshot-reads=%d recluster-migrations=%d ok\n",
				seed, mode, o.workers, o.readers, o.shards, o.ops, res.Committed, res.Aborted, res.DeadlockRetries, res.SnapshotReads, res.ReclusterMigrations)
			continue
		}
		if fail := sim.Run(o.config(seed)); fail != nil {
			return fail, nil
		}
		fmt.Fprintf(out, "seed=%d ops=%d ok\n", seed, o.ops)
	}
	return nil, nil
}

func main() {
	o, err := parseFlags(os.Args[1:])
	if err != nil {
		os.Exit(2)
	}
	fail, err := run(o, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simrunner:", err)
		os.Exit(2)
	}
	if fail != nil {
		fmt.Fprintln(os.Stderr, fail.Report())
		os.Exit(1)
	}
}
