// Quickstart: the paper's Example 1 (§2.3) through the Go API.
//
// A Vehicle holds its Body, Drivetrain, and Tires through INDEPENDENT
// EXCLUSIVE composite references: a part serves at most one vehicle at a
// time (exclusive), but survives the vehicle's deletion and can be reused
// (independent) — exactly the semantics the original ORION model could
// not express.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/schema"
	"repro/internal/value"
)

func main() {
	d, err := db.Open(db.Options{}) // in-memory
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	// --- schema: the make-class definitions of Example 1 ---
	for _, n := range []string{"Company", "AutoBody", "AutoDrivetrain", "AutoTires"} {
		if _, err := d.DefineClass(schema.ClassDef{Name: n}); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := d.DefineClass(schema.ClassDef{
		Name: "Vehicle",
		Attributes: []schema.AttrSpec{
			schema.NewAttr("Id", schema.IntDomain),
			schema.NewAttr("Manufacturer", schema.ClassDomain("Company")), // weak reference
			schema.NewCompositeAttr("Body", "AutoBody").WithDependent(false),
			schema.NewCompositeAttr("Drivetrain", "AutoDrivetrain").WithDependent(false),
			schema.NewCompositeSetAttr("Tires", "AutoTires").WithDependent(false),
			schema.NewAttr("Color", schema.StringDomain),
		},
	}); err != nil {
		log.Fatal(err)
	}

	// --- build parts bottom-up (impossible under the 1987 model) ---
	body, _ := d.Make("AutoBody", nil)
	drivetrain, _ := d.Make("AutoDrivetrain", nil)
	var tires []value.Value
	for i := 0; i < 4; i++ {
		tr, _ := d.Make("AutoTires", nil)
		tires = append(tires, value.Ref(tr.UID()))
	}
	acme, _ := d.Make("Company", nil)

	fmt.Println("assembling a vehicle from pre-existing parts (bottom-up creation):")
	vehicle, err := d.Make("Vehicle", map[string]value.Value{
		"Id":           value.Int(1),
		"Color":        value.Str("red"),
		"Body":         value.Ref(body.UID()),
		"Drivetrain":   value.Ref(drivetrain.UID()),
		"Tires":        value.SetOf(tires...),
		"Manufacturer": value.Ref(acme.UID()),
	})
	if err != nil {
		log.Fatal(err)
	}
	comps, _ := d.ComponentsOf(vehicle.UID(), core.QueryOpts{})
	fmt.Printf("  vehicle %v has %d components\n", vehicle.UID(), len(comps))

	// Exclusivity: the body cannot serve a second vehicle.
	_, err = d.Make("Vehicle", map[string]value.Value{"Body": value.Ref(body.UID())})
	fmt.Printf("  using the same body for a second vehicle: %v\n", err != nil)

	// parents-of / child-of, §3.
	parents, _ := d.ParentsOf(body.UID(), core.QueryOpts{})
	fmt.Printf("  (parents-of body) = %v\n", parents)
	isChild, _ := d.ChildOf(body.UID(), vehicle.UID())
	fmt.Printf("  (child-of body vehicle) = %v\n", isChild)
	isExcl, _ := d.ExclusiveComponentOf(body.UID(), vehicle.UID())
	fmt.Printf("  (exclusive-component-of body vehicle) = %v\n", isExcl)

	// --- dismantle: independence keeps the parts alive ---
	fmt.Println("\ndismantling the vehicle:")
	deleted, _ := d.Delete(vehicle.UID())
	fmt.Printf("  deleted %d object(s): just the vehicle\n", len(deleted))
	fmt.Printf("  body still exists: %v\n", d.Engine().Exists(body.UID()))

	// --- reuse for a new vehicle ---
	v2, err := d.Make("Vehicle", map[string]value.Value{
		"Id":   value.Int(2),
		"Body": value.Ref(body.UID()),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nparts reused for vehicle %v — the re-use the extended model exists for\n", v2.UID())
}
