// CAD versions: a mechanical-CAD assembly — the application domain the
// paper repeatedly motivates ("including some mechanical CAD
// applications") — combining a physical part hierarchy with the version
// model of §5.
//
// A robot-arm design evolves: the designer derives new versions of the
// gripper, while the arm assembly binds to the gripper DYNAMICALLY (via
// the generic instance), so it always picks up the default version; a
// released arm version binds STATICALLY to a frozen gripper version.
//
// Run: go run ./examples/cadversions
package main

import (
	"fmt"
	"log"

	"repro/internal/db"
	"repro/internal/schema"
	"repro/internal/uid"
	"repro/internal/value"
)

func main() {
	d, err := db.Open(db.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	for _, def := range []schema.ClassDef{
		{Name: "Gripper", Versionable: true, Attributes: []schema.AttrSpec{
			schema.NewAttr("Fingers", schema.IntDomain),
			schema.NewAttr("MaxLoadKg", schema.RealDomain),
		}},
		{Name: "Arm", Versionable: true, Attributes: []schema.AttrSpec{
			schema.NewAttr("Name", schema.StringDomain),
			// Independent exclusive: an arm owns its gripper design slot,
			// but the gripper design outlives any one arm revision.
			schema.NewCompositeAttr("EndEffector", "Gripper").WithDependent(false),
		}},
	} {
		if _, err := d.DefineClass(def); err != nil {
			log.Fatal(err)
		}
	}
	vm := d.Versions()

	// v0 of the gripper.
	gGrip, grip0, err := vm.CreateVersionable("Gripper", map[string]value.Value{
		"Fingers": value.Int(2), "MaxLoadKg": value.Real(1.5),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gripper generic %v, v0 %v (2 fingers, 1.5 kg)\n", gGrip, grip0)

	// The arm binds DYNAMICALLY: its reference targets the generic.
	_, arm0, err := vm.CreateVersionable("Arm", map[string]value.Value{
		"Name": value.Str("arm-A"),
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := vm.Attach(arm0, "EndEffector", gGrip); err != nil {
		log.Fatal(err)
	}
	resolve := func(armV uid.UID) uid.UID {
		o, _ := d.Get(armV)
		ref, _ := o.Get("EndEffector").AsRef()
		r, err := vm.Resolve(ref)
		if err != nil {
			log.Fatal(err)
		}
		return r
	}
	fmt.Printf("arm v0 dynamically binds EndEffector -> resolves to %v\n", resolve(arm0))

	// Design iteration: derive gripper v1 (3 fingers) and v2 (higher load).
	grip1, _ := vm.Derive(grip0)
	d.Set(grip1, "Fingers", value.Int(3))
	grip2, _ := vm.Derive(grip1)
	d.Set(grip2, "MaxLoadKg", value.Real(4.0))
	fmt.Printf("derived gripper v1 %v and v2 %v; derivation hierarchy:\n", grip1, grip2)
	info, _ := vm.Info(gGrip)
	for _, v := range info.Versions {
		fmt.Printf("  %v derived-from %v (ts %d)\n", v, info.DerivedFrom[v], info.Stamp[v])
	}

	// Dynamic binding now resolves to the newest version automatically.
	fmt.Printf("arm v0 now resolves to %v (system default = newest)\n", resolve(arm0))

	// Engineering pins the default to the reviewed v1.
	vm.SetDefault(gGrip, grip1)
	fmt.Printf("after set-default v1: arm resolves to %v\n", resolve(arm0))

	// Release: derive arm v1 and freeze it on a specific gripper version
	// (static binding). Deriving rewrote the independent exclusive
	// reference to the generic (Figure 1); rebind statically.
	arm1, _ := vm.Derive(arm0)
	armObj, _ := d.Get(arm1)
	if ref, ok := armObj.Get("EndEffector").AsRef(); ok {
		vm.Detach(arm1, "EndEffector", ref)
	}
	if err := vm.Attach(arm1, "EndEffector", grip1); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("arm v1 statically bound to gripper %v (frozen for release)\n", resolve(arm1))

	// Later design work moves the default; the release stays frozen.
	vm.SetDefault(gGrip, uid.Nil) // back to newest
	fmt.Printf("default moves on: arm v0 -> %v, released arm v1 -> %v\n",
		resolve(arm0), resolve(arm1))

	// Rule CV-2X at work: a second arm hierarchy cannot exclusively grab
	// the same generic gripper.
	_, armB, _ := vm.CreateVersionable("Arm", map[string]value.Value{"Name": value.Str("arm-B")})
	err = vm.Attach(armB, "EndEffector", gGrip)
	fmt.Printf("arm-B exclusively referencing the same generic gripper: rejected = %v\n", err != nil)
}
