// Documents: the paper's Example 2 (§2.3) — a LOGICAL part hierarchy with
// shared composite references, run through the ORION-style s-expression
// surface so the class definitions match the paper's text.
//
//   - Document.Sections    : shared dependent   (a chapter may belong to
//     two books; it exists while at least one book holds it)
//   - Section.Content      : shared dependent   (paragraphs, same logic)
//   - Document.Figures     : shared independent (images outlive documents)
//   - Document.Annotations : exclusive dependent (private to one document)
//
// Run: go run ./examples/documents
package main

import (
	"fmt"
	"log"

	"repro/internal/db"
	"repro/internal/sexpr"
)

const program = `
(make-class 'Paragraph :superclasses nil)
(make-class 'Image :superclasses nil)
(make-class 'Section :superclasses nil
  :attribute '(
    (Content :domain (set-of Paragraph) :composite true :exclusive nil :dependent true)))
(make-class 'Document :superclasses nil
  :attribute '(
    (Title       :domain string)
    (Authors     :domain (set-of string))
    (Sections    :domain (set-of Section)   :composite true :exclusive nil :dependent true)
    (Figures     :domain (set-of Image)     :composite true :exclusive nil :dependent nil)
    (Annotations :domain (set-of Paragraph) :composite true :exclusive true :dependent true)))

(define p1   (make Paragraph))
(define p2   (make Paragraph))
(define ch   (make Section))          ; the chapter both books will share
(attach ch Content p1)
(attach ch Content p2)
(define img  (make Image))

(define book1 (make Document :Title "Composite Objects"))
(attach book1 Sections ch)
(attach book1 Figures img)
(define note (make Paragraph :parent ((book1 Annotations))))

(define book2 (make Document :Title "Objects Revisited"))
(attach book2 Sections ch)            ; an identical chapter in two books
`

func main() {
	d, err := db.Open(db.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()
	in := sexpr.NewInterp(d)
	if _, err := in.EvalString(program); err != nil {
		log.Fatal(err)
	}
	eval := func(src string) string {
		v, err := in.EvalString(src)
		if err != nil {
			return "error: " + err.Error()
		}
		return v.String()
	}

	fmt.Println("the chapter is a shared component of both books:")
	fmt.Printf("  (parents-of ch)                = %s\n", eval("(parents-of ch)"))
	fmt.Printf("  (shared-component-of ch book1) = %s\n", eval("(shared-component-of ch book1)"))
	fmt.Printf("  (components-of book1)          = %s\n", eval("(components-of book1)"))
	fmt.Printf("  (components-of book1 :level 1) = %s\n", eval("(components-of book1 :level 1)"))

	fmt.Println("\nannotations are exclusive — sharing one is a topology violation:")
	fmt.Printf("  (attach book2 Annotations note) -> %s\n", eval("(attach book2 Annotations note)"))

	fmt.Println("\ndeleting book1 (the chapter survives in book2; the private")
	fmt.Println("annotation dies; the independent image survives):")
	fmt.Printf("  (delete book1) removed %s\n", eval("(delete book1)"))
	fmt.Printf("  chapter still exists: (parents-of ch) = %s\n", eval("(parents-of ch)"))

	fmt.Println("\ndeleting book2 — the last book holding the chapter — cascades")
	fmt.Println("through the chapter to its paragraphs (dependent shared, last")
	fmt.Println("parent gone):")
	fmt.Printf("  (delete book2) removed %s\n", eval("(delete book2)"))
	fmt.Println("\n\"For a paragraph to exist, there must be at least one section")
	fmt.Println("containing it and thus a document containing it.\" — §2.3")
}
