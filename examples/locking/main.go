// Locking: §7's composite-object locking protocol under real concurrency.
//
// Two writer goroutines update DIFFERENT composite objects of the same
// hierarchy concurrently (the protocol's headline capability: ISO/IXO are
// mutually compatible, the root S/X locks arbitrate), while a reader
// repeatedly reads whole composite objects and must never observe a
// half-updated one. Then the §7 examples 1–3 are replayed, and finally
// the [GARZ88] root-locking anomaly is demonstrated.
//
// Run: go run ./examples/locking
package main

import (
	"fmt"
	"log"
	"sync"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/lock"
	"repro/internal/schema"
	"repro/internal/txn"
	"repro/internal/uid"
	"repro/internal/value"
)

func main() {
	d, err := db.Open(db.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()
	for _, def := range []schema.ClassDef{
		{Name: "Wheel", Attributes: []schema.AttrSpec{schema.NewAttr("Torque", schema.IntDomain)}},
		{Name: "Vehicle", Attributes: []schema.AttrSpec{
			schema.NewAttr("Revision", schema.IntDomain),
			schema.NewCompositeSetAttr("Wheels", "Wheel"),
		}},
	} {
		if _, err := d.DefineClass(def); err != nil {
			log.Fatal(err)
		}
	}

	// Two vehicles, four wheels each.
	mkVehicle := func() uid.UID {
		var v uid.UID
		err := d.Run(func(tx *txn.Txn) error {
			veh, err := tx.New("Vehicle", map[string]value.Value{"Revision": value.Int(0)})
			if err != nil {
				return err
			}
			v = veh.UID()
			for i := 0; i < 4; i++ {
				if _, err := tx.New("Wheel", map[string]value.Value{"Torque": value.Int(0)},
					core.ParentSpec{Parent: v, Attr: "Wheels"}); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
		return v
	}
	v1, v2 := mkVehicle(), mkVehicle()
	fmt.Printf("two composite objects: vehicle %v and vehicle %v\n\n", v1, v2)

	// Writers on different vehicles + a whole-object reader.
	const rounds = 50
	var wg sync.WaitGroup
	writer := func(root uid.UID) {
		defer wg.Done()
		for i := 1; i <= rounds; i++ {
			rev := i
			err := d.Run(func(tx *txn.Txn) error {
				// The composite write protocol: IX on Vehicle, X on the
				// root, IXO on Wheel.
				if err := d.Txns().Protocol().LockCompositeWrite(tx.ID(), root); err != nil {
					return err
				}
				if err := tx.WriteAttr(root, "Revision", value.Int(int64(rev))); err != nil {
					return err
				}
				comps, err := d.ComponentsOf(root, core.QueryOpts{})
				if err != nil {
					return err
				}
				for _, w := range comps {
					if err := tx.WriteAttr(w, "Torque", value.Int(int64(rev))); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				log.Fatalf("writer %v: %v", root, err)
			}
		}
	}
	var torn int
	reader := func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			for _, root := range []uid.UID{v1, v2} {
				err := d.Run(func(tx *txn.Txn) error {
					ids, err := tx.ReadComposite(root)
					if err != nil {
						return err
					}
					// Under the protocol, the revision and every wheel's
					// torque must agree — no torn composite reads.
					var rev int64 = -1
					for _, id := range ids {
						o, err := d.Get(id)
						if err != nil {
							return err
						}
						var n int64
						if id == root {
							n, _ = o.Get("Revision").AsInt()
						} else {
							n, _ = o.Get("Torque").AsInt()
						}
						if rev == -1 {
							rev = n
						} else if rev != n {
							torn++
						}
					}
					return nil
				})
				if err != nil {
					log.Fatalf("reader: %v", err)
				}
			}
		}
	}
	wg.Add(3)
	go writer(v1)
	go writer(v2)
	go reader()
	wg.Wait()
	fmt.Printf("writers updated different composite objects concurrently: %d rounds each\n", rounds)
	fmt.Printf("reader observed torn composite states: %d (must be 0)\n\n", torn)

	// §7 examples 1–3 as lock sets.
	fmt.Println("§7 worked examples (see also cmd/figures -fig 9):")
	lm := lock.NewManager()
	grant := func(tx lock.TxID, g lock.Granule, m lock.Mode) bool { return lm.TryLock(tx, g, m) }
	fmt.Printf("  ex1 update CO at i: C in IXO  -> %v\n", grant(1, lock.ClassGranule("C"), lock.IXO))
	fmt.Printf("  ex2 read   CO at k: C in ISOS -> %v (compatible with ex1)\n", grant(2, lock.ClassGranule("C"), lock.ISOS))
	fmt.Printf("  ex3 update CO at j: C in IXOS -> %v (conflicts with both)\n", grant(3, lock.ClassGranule("C"), lock.IXOS))

	// The GARZ88 anomaly.
	fmt.Println("\n[GARZ88] root locking with shared references (the paper's warning):")
	demoGarz88()
}

func demoGarz88() {
	cat := schema.NewCatalog()
	cat.DefineClass(schema.ClassDef{Name: "Leaf"})
	cat.DefineClass(schema.ClassDef{Name: "Root", Attributes: []schema.AttrSpec{
		schema.NewCompositeSetAttr("Kids", "Leaf").WithExclusive(false).WithDependent(false),
	}})
	e := core.NewEngine(cat)
	p := lock.NewProtocol(lock.NewManager(), e)
	mk := func(cl string) uid.UID { o, _ := e.New(cl, nil); return o.UID() }
	op, q := mk("Leaf"), mk("Leaf")
	j, k, o := mk("Root"), mk("Root"), mk("Root")
	for _, pair := range [][2]uid.UID{{j, op}, {k, op}, {k, q}, {o, q}} {
		if err := e.Attach(pair[0], "Kids", pair[1]); err != nil {
			log.Fatal(err)
		}
	}
	p.LockViaRoots(1, op, false) // T1 reads o'
	p.LockViaRoots(2, o, true)   // T2 writes o — granted!
	conflicts, _ := p.ImplicitConflicts([]lock.TxID{1, 2})
	fmt.Printf("  T1 S(o') and T2 X(o) both granted; undetected implicit conflicts: %d on %v\n",
		len(conflicts), conflicts[0][0].Obj)
}
