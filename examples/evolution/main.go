// Evolution: §4 — schema evolution under the extended composite-object
// model, on a product-catalog scenario.
//
// A catalog starts with the rigid 1987 semantics (dependent exclusive
// everywhere) and is migrated live — attribute-type changes I1–I4 with
// immediate and deferred application, the state-dependent changes D2/D3
// with their verification, and the cascading drop operations.
//
// Run: go run ./examples/evolution
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/schema"
	"repro/internal/uid"
	"repro/internal/value"
)

func main() {
	d, err := db.Open(db.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()
	e := d.Engine()
	cat := d.Catalog()

	// Era 1: the 1987-style schema — manuals are dependent exclusive
	// components of products (the make-class defaults, §2.3).
	if _, err := d.DefineClass(schema.ClassDef{Name: "Manual", Attributes: []schema.AttrSpec{
		schema.NewAttr("Pages", schema.IntDomain),
	}}); err != nil {
		log.Fatal(err)
	}
	if _, err := d.DefineClass(schema.ClassDef{Name: "Product", Attributes: []schema.AttrSpec{
		schema.NewAttr("Name", schema.StringDomain),
		schema.NewCompositeSetAttr("Manuals", "Manual"),            // dependent exclusive (defaults)
		schema.NewSetAttr("SeeAlso", schema.ClassDomain("Manual")), // weak references
	}}); err != nil {
		log.Fatal(err)
	}

	mk := func(class string, attrs map[string]value.Value, parents ...core.ParentSpec) uid.UID {
		o, err := d.Make(class, attrs, parents...)
		if err != nil {
			log.Fatal(err)
		}
		return o.UID()
	}
	p1 := mk("Product", map[string]value.Value{"Name": value.Str("drill")})
	p2 := mk("Product", map[string]value.Value{"Name": value.Str("saw")})
	m1 := mk("Manual", map[string]value.Value{"Pages": value.Int(10)},
		core.ParentSpec{Parent: p1, Attr: "Manuals"})
	kind := func() schema.RefKind {
		a, _ := cat.Attribute("Product", "Manuals")
		return a.RefKind()
	}
	fmt.Printf("era 1: Product.Manuals is %s\n", kind())
	if err := d.Attach(p2, "Manuals", m1); err != nil {
		fmt.Printf("  sharing the manual with a second product: rejected (%v)\n\n", err != nil)
	}

	// I2 (immediate): exclusive -> shared. Both the spec and the X flags
	// in existing reverse references change.
	if err := e.ChangeAttributeType("Product", "Manuals", schema.ChangeToShared, false); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after I2 (immediate): Product.Manuals is %s\n", kind())
	if err := d.Attach(p2, "Manuals", m1); err != nil {
		log.Fatal(err)
	}
	mo, _ := d.Get(m1)
	fmt.Printf("  the manual now has %d shared parents\n\n", len(mo.DS()))

	// I3 (deferred): dependent -> independent. The spec changes now; the
	// D flags in instances are rewritten lazily via the operation log and
	// change counts (§4.3) when each object is next accessed.
	if err := e.ChangeAttributeType("Product", "Manuals", schema.ChangeToIndependent, true); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after I3 (deferred): Product.Manuals is %s\n", kind())
	fmt.Printf("  catalog CC = %d; the manual's stamp lags until accessed\n", cat.CurrentCC())
	mo, _ = d.Get(m1) // access applies pending changes
	fmt.Printf("  after access: manual reverse refs = %v (independent now)\n\n", mo.Reverse())

	// Deleting both products proves independence: the manual survives.
	d.Delete(p1)
	d.Delete(p2)
	fmt.Printf("both products deleted; manual survives: %v\n\n", e.Exists(m1))

	// D2 (state-dependent): the weak SeeAlso becomes a shared composite
	// reference — legal only if no referenced manual has an exclusive
	// parent. Verification is immediate by necessity (§4.3).
	p3 := mk("Product", map[string]value.Value{"Name": value.Str("lathe")})
	if err := d.Set(p3, "SeeAlso", value.RefSet(m1)); err != nil {
		log.Fatal(err)
	}
	if err := e.MakeComposite("Product", "SeeAlso", false, false); err != nil {
		log.Fatal(err)
	}
	a, _ := cat.Attribute("Product", "SeeAlso")
	fmt.Printf("after D2: Product.SeeAlso is %s\n", a.RefKind())
	mo, _ = d.Get(m1)
	fmt.Printf("  the manual gained a reverse reference: %v\n\n", mo.Reverse())

	// D3: shared -> exclusive. Rejected while the manual also hangs off
	// Manuals of another product; accepted once it has a single parent.
	p4 := mk("Product", nil)
	if err := d.Attach(p4, "Manuals", m1); err != nil {
		log.Fatal(err)
	}
	err = e.MakeExclusive("Product", "SeeAlso")
	fmt.Printf("D3 with two composite parents on the manual: rejected (%v)\n", err != nil)
	if err := d.Detach(p4, "Manuals", m1); err != nil {
		log.Fatal(err)
	}
	if err := e.MakeExclusive("Product", "SeeAlso"); err != nil {
		log.Fatal(err)
	}
	a, _ = cat.Attribute("Product", "SeeAlso")
	fmt.Printf("D3 after detaching: Product.SeeAlso is %s\n\n", a.RefKind())

	// Finally §4.1: dropping a composite attribute cascades per the
	// Deletion Rule — make SeeAlso dependent first (I4), then drop it.
	if err := e.ChangeAttributeType("Product", "SeeAlso", schema.ChangeToDependent, false); err != nil {
		log.Fatal(err)
	}
	deleted, err := e.DropAttribute("Product", "SeeAlso")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("drop-attribute Product.SeeAlso deleted %d dependent component(s): %v\n",
		len(deleted), deleted)
	fmt.Printf("manual gone: %v\n", !e.Exists(m1))
	if v := e.Integrity(); len(v) != 0 {
		log.Fatalf("integrity: %v", v)
	}
	fmt.Println("\nintegrity clean after the whole migration")
}
