// Authorization: §6 — composite objects as a unit of authorization, on
// the design-library scenario of Figures 4 and 5.
//
// A design library stores project assemblies as composite objects. One
// grant on a project root authorizes the whole assembly (implicit
// authorization); a subassembly shared by two projects combines the
// authorizations implied by both, with the paper's conflict rules.
//
// Run: go run ./examples/authorization
package main

import (
	"fmt"
	"log"

	"repro/internal/authz"
	"repro/internal/db"
	"repro/internal/schema"
	"repro/internal/uid"
	"repro/internal/value"
)

func main() {
	d, err := db.Open(db.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()
	if _, err := d.DefineClass(schema.ClassDef{Name: "Part", Attributes: []schema.AttrSpec{
		schema.NewAttr("Name", schema.StringDomain),
		schema.NewCompositeSetAttr("Subparts", "Part").WithExclusive(false).WithDependent(false),
	}}); err != nil {
		log.Fatal(err)
	}
	mk := func(name string) uid.UID {
		o, err := d.Make("Part", map[string]value.Value{"Name": value.Str(name)})
		if err != nil {
			log.Fatal(err)
		}
		return o.UID()
	}
	link := func(p, c uid.UID) {
		if err := d.Attach(p, "Subparts", c); err != nil {
			log.Fatal(err)
		}
	}

	// Two project assemblies sharing a standard subassembly (Figure 5).
	projJ := mk("project-j")
	projK := mk("project-k")
	shared := mk("std-bearing") // the paper's Instance[o']
	privJ := mk("j-chassis")
	privK := mk("k-chassis")
	link(projJ, shared)
	link(projK, shared)
	link(projJ, privJ)
	link(projK, privK)

	au := d.Authz()

	fmt.Println("one grant covers the whole composite object (Figure 4):")
	if err := au.GrantObject("dana", projJ, authz.SR); err != nil {
		log.Fatal(err)
	}
	for _, id := range []uid.UID{projJ, shared, privJ} {
		ok, _ := au.Check("dana", id, authz.Read)
		o, _ := d.Get(id)
		name, _ := o.Get("Name").AsString()
		fmt.Printf("  dana read %-12s = %v\n", name, ok)
	}
	ok, _ := au.Check("dana", privK, authz.Read)
	fmt.Printf("  dana read %-12s = %v (not in the granted composite object)\n", "k-chassis", ok)

	fmt.Println("\ngrants from two roots combine on the shared subassembly (Figure 5):")
	if err := au.GrantObject("dana", projK, authz.SW); err != nil {
		log.Fatal(err)
	}
	res, _ := au.Effective("dana", shared)
	fmt.Printf("  sR via project-j + sW via project-k  =>  effective on std-bearing: %s\n", res)
	okW, _ := au.Check("dana", shared, authz.Write)
	fmt.Printf("  dana write std-bearing = %v\n", okW)

	fmt.Println("\nconflicting grants are rejected at grant time (the paper's s¬R/sW example):")
	if err := au.GrantObject("eve", projJ, authz.SNR); err != nil {
		log.Fatal(err)
	}
	err = au.GrantObject("eve", projK, authz.SW)
	fmt.Printf("  eve: s¬R on project-j, then sW on project-k -> %v\n", err)

	fmt.Println("\nweak authorizations are overridable:")
	if err := au.GrantObject("eve", projK, authz.WW); err != nil {
		log.Fatal(err)
	}
	res, _ = au.Effective("eve", shared)
	fmt.Printf("  eve: s¬R (strong) + wW (weak) on std-bearing => %s (strong wins)\n", res)
	res, _ = au.Effective("eve", privK)
	fmt.Printf("  eve on k-chassis (only the weak grant applies) => %s\n", res)

	fmt.Println("\nclass-level grants reach instances AND their components (§6):")
	if _, err := d.DefineClass(schema.ClassDef{Name: "Library", Attributes: []schema.AttrSpec{
		schema.NewCompositeSetAttr("Projects", "Part").WithExclusive(false).WithDependent(false),
	}}); err != nil {
		log.Fatal(err)
	}
	lib, _ := d.Make("Library", nil)
	if err := d.Attach(lib.UID(), "Projects", projJ); err != nil {
		log.Fatal(err)
	}
	if err := au.GrantClass("carol", "Library", authz.SR); err != nil {
		log.Fatal(err)
	}
	okR, _ := au.Check("carol", shared, authz.Read)
	fmt.Printf("  carol (Library class grant) read std-bearing = %v\n", okR)
	free := mk("loose-part")
	okR, _ = au.Check("carol", free, authz.Read)
	fmt.Printf("  carol read loose-part (not under any Library) = %v\n", okR)

	fmt.Println("\nthe full Figure 6 matrix: cmd/figures -fig 6")
}
