package repro

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun executes every example program and the figures tool as
// real processes, asserting on their key output lines — the examples are
// living documentation and must not rot.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess examples skipped in -short mode")
	}
	cases := []struct {
		path string
		want []string
	}{
		{"./examples/quickstart", []string{
			"deleted 1 object(s)",
			"body still exists: true",
			"parts reused",
		}},
		{"./examples/documents", []string{
			"(shared-component-of ch book1) = true",
			"chapter still exists",
		}},
		{"./examples/cadversions", []string{
			"after set-default v1",
			"rejected = true",
		}},
		{"./examples/locking", []string{
			"reader observed torn composite states: 0",
			"undetected implicit conflicts: 1",
		}},
		{"./examples/authorization", []string{
			"effective on std-bearing: sW",
			"carol read loose-part (not under any Library) = false",
		}},
		{"./examples/evolution", []string{
			"integrity clean after the whole migration",
			"manual gone: true",
		}},
		{"./cmd/figures", []string{
			"Figure 6",
			"SIXOS",
			"undetected implicit conflicts: 1",
		}},
	}
	for _, c := range cases {
		c := c
		t.Run(strings.TrimPrefix(c.path, "./"), func(t *testing.T) {
			t.Parallel()
			args := []string{"run", c.path}
			if c.path == "./cmd/figures" {
				args = append(args, "-fig", "all")
			}
			out, err := exec.Command("go", args...).CombinedOutput()
			if err != nil {
				t.Fatalf("go run %s: %v\n%s", c.path, err, out)
			}
			for _, want := range c.want {
				if !strings.Contains(string(out), want) {
					t.Errorf("output of %s missing %q\n%s", c.path, want, out)
				}
			}
		})
	}
}
